"""repro.server — the persistent query server.

Promotes the engines (and the sharded execution service) from
per-invocation processes into a long-lived serving tier:

* :mod:`~repro.server.protocol` — the length-prefixed JSON wire
  protocol shared by the server and the load-generation clients;
* :mod:`~repro.server.admission` — the bounded request queue with
  admission control (load shedding) and per-tenant weighted fair
  scheduling;
* :mod:`~repro.server.server` — the asyncio socket server: session
  handshake with engine/class/scale selection, warm engine reuse
  across sessions, deadline-aware dispatch and graceful drain on
  SIGTERM.

The client side lives in :mod:`repro.loadgen`.
"""

from .admission import AdmissionController, Request
from .protocol import (
    MAX_FRAME,
    encode_frame,
    error_response,
    read_message,
    recv_message,
    send_message,
    write_message,
)
from .server import EngineSpec, QueryServer, ServerConfig

__all__ = [
    "AdmissionController",
    "Request",
    "MAX_FRAME",
    "encode_frame",
    "error_response",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
    "EngineSpec",
    "QueryServer",
    "ServerConfig",
]
