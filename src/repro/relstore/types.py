"""Column types and value coercion for the mini relational engine."""

from __future__ import annotations

import enum

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Supported SQL-ish column types."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    TEXT = "text"
    DATE = "date"          # stored as ISO text; compares chronologically
    CLOB = "clob"          # large text (whole XML documents in Xcolumn)


def coerce(value: object, column_type: ColumnType) -> object:
    """Coerce ``value`` to the Python representation of ``column_type``.

    ``None`` passes through (NULL).  Raises :class:`SchemaError` on values
    that cannot be represented.
    """
    if value is None:
        return None
    try:
        if column_type is ColumnType.INTEGER:
            if isinstance(value, bool):
                raise ValueError("boolean is not an integer")
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(f"{value!r} is not integral")
            return int(value)
        if column_type is ColumnType.DECIMAL:
            return float(value)
        if column_type in (ColumnType.TEXT, ColumnType.CLOB):
            return value if isinstance(value, str) else str(value)
        if column_type is ColumnType.DATE:
            text = value if isinstance(value, str) else str(value)
            parts = text.split("-")
            if len(parts) != 3 or not all(p.isdigit() for p in parts):
                raise ValueError(f"{text!r} is not an ISO date")
            return text
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"cannot store {value!r} as {column_type.value}: {exc}"
        ) from None
    raise SchemaError(f"unknown column type {column_type!r}")


def sort_key(value: object) -> tuple:
    """A NULL-safe, type-bucketed sort key (NULLs first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, value)
