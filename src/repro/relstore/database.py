"""Database facade: named tables + named indexes + access-path selection."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import SchemaError
from ..obs.recorder import count as _obs_count
from .index import HashIndex, SortedIndex
from .operators import index_lookup, index_range, seq_scan
from .table import Column, Table


class Database:
    """A catalog of tables and their secondary indexes."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: dict[str, Table] = {}
        # (table, column) -> index
        self.indexes: dict[tuple[str, str], SortedIndex | HashIndex] = {}

    # -- DDL ---------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        if name in self.tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(name, columns)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name}") from None

    def create_index(self, table_name: str, column_name: str,
                     kind: str = "sorted",
                     unique: bool = False) -> SortedIndex | HashIndex:
        """Build a secondary index (kind: ``sorted`` or ``hash``)."""
        table = self.table(table_name)
        if kind == "sorted":
            index: SortedIndex | HashIndex = SortedIndex(
                table, column_name, unique)
        elif kind == "hash":
            index = HashIndex(table, column_name, unique)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        self.indexes[(table_name, column_name)] = index
        return index

    def drop_indexes(self) -> None:
        """Drop every secondary index (for the index-ablation bench)."""
        self.indexes.clear()

    def index_for(self, table_name: str,
                  column_name: str) -> Optional[SortedIndex | HashIndex]:
        return self.indexes.get((table_name, column_name))

    # -- DML with index maintenance (update workload) ------------------------

    def insert_row(self, table_name: str, values: dict) -> int:
        """Insert a row, maintaining every index on the table."""
        table = self.table(table_name)
        row_id = table.insert(values)
        for (indexed_table, column), index in self.indexes.items():
            if indexed_table == table_name:
                index.insert(table.value(row_id, column), row_id)
        return row_id

    def delete_row(self, table_name: str, row_id: int) -> None:
        """Tombstone a row, maintaining every index on the table."""
        table = self.table(table_name)
        for (indexed_table, column), index in self.indexes.items():
            if indexed_table == table_name:
                index.remove(table.value(row_id, column), row_id)
        table.delete(row_id)

    def update_cell(self, table_name: str, row_id: int, column: str,
                    value: object) -> None:
        """Update one cell, maintaining the index on that column."""
        table = self.table(table_name)
        previous = table.update(row_id, column, value)
        index = self.indexes.get((table_name, column))
        if index is not None:
            index.remove(previous, row_id)
            index.insert(table.value(row_id, column), row_id)

    # -- access paths -----------------------------------------------------------

    def lookup(self, table_name: str, column_name: str,
               value: object) -> Iterator[dict]:
        """Equality access: via index when one exists, else a scan."""
        table = self.table(table_name)
        index = self.index_for(table_name, column_name)
        if index is not None:
            _obs_count("relstore.index_lookups")
            return index_lookup(table, index, value)
        _obs_count("relstore.seq_scans")
        return seq_scan(table,
                        lambda row: row.get(column_name) == value)

    def range_scan(self, table_name: str, column_name: str,
                   low: object = None, high: object = None
                   ) -> Iterator[dict]:
        """Range access: via a sorted index when available, else a scan."""
        table = self.table(table_name)
        index = self.index_for(table_name, column_name)
        if isinstance(index, SortedIndex):
            _obs_count("relstore.index_range_scans")
            return index_range(table, index, low, high)
        _obs_count("relstore.seq_scans")

        def in_range(row: dict) -> bool:
            value = row.get(column_name)
            if value is None:
                return False
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
            return True

        return seq_scan(table, in_range)

    def scan(self, table_name: str) -> Iterator[dict]:
        """Full scan of a table."""
        _obs_count("relstore.table_scans")
        return seq_scan(self.table(table_name))

    # -- stats ----------------------------------------------------------------

    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def reset_scan_counters(self) -> None:
        for table in self.tables.values():
            table.rows_scanned = 0

    def rows_scanned(self) -> int:
        return sum(table.rows_scanned for table in self.tables.values())
