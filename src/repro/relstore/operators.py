"""Iterator-style relational operators.

These are the physical operators the engine analogues compose into query
plans: scans, index lookups, selection, projection, nested-loop and hash
joins, sorting, grouping and limits.  All operate on (and yield) plain
dicts keyed by column name, optionally qualified by the caller.

Every public operator is plan-profiled: when a
:class:`~repro.obs.plan.PlanProfiler` is installed (EXPLAIN ANALYZE
mode), the operator reports rows pulled from its inputs (``rows_in``),
rows emitted (``rows_out``) and the wall-time spent while its iterator
was live.  The check is one global read at call time; without a
profiler, the original generators run untouched.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, Optional

from ..obs.recorder import plan as _plan
from .index import HashIndex, SortedIndex
from .table import Table
from .types import sort_key

Row = dict
Predicate = Callable[[Row], bool]


# -- profiling plumbing ------------------------------------------------------

class _Tally:
    """Mutable rows-in counter shared with input-counting wrappers."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


def _tallied(rows: Iterable[Row], tally: _Tally) -> Iterator[Row]:
    """Count rows pulled from an operator input."""
    for row in rows:
        tally.count += 1
        yield row


def _instrumented(stats, rows: Iterator[Row],
                  tally: _Tally) -> Iterator[Row]:
    """Drive ``rows``, timing the live (non-suspended) slices and
    counting emitted rows; records once when the iterator finishes, is
    closed early, or raises.  Times are inclusive of the inputs
    (Postgres EXPLAIN ANALYZE convention)."""
    rows_out = 0
    active = 0.0
    resume: float | None = time.perf_counter()
    try:
        for row in rows:
            rows_out += 1
            active += time.perf_counter() - resume
            resume = None
            yield row
            resume = time.perf_counter()
        active += time.perf_counter() - resume
        resume = None
    finally:
        if resume is not None:
            active += time.perf_counter() - resume
        stats.record(seconds=active, rows_in=tally.count,
                     rows_out=rows_out)


# -- scans and index access --------------------------------------------------

def _seq_scan(table: Table, predicate: Optional[Predicate]
              ) -> Iterator[Row]:
    for row_id, _ in table.scan():
        row = table.as_dict(row_id)
        if predicate is None or predicate(row):
            yield row


def _seq_scan_tallied(table: Table, predicate: Optional[Predicate],
                      tally: _Tally) -> Iterator[Row]:
    for row_id, _ in table.scan():
        tally.count += 1
        row = table.as_dict(row_id)
        if predicate is None or predicate(row):
            yield row


def seq_scan(table: Table, predicate: Optional[Predicate] = None
             ) -> Iterator[Row]:
    """Full table scan with an optional filter."""
    profiler = _plan()
    if profiler is None:
        return _seq_scan(table, predicate)
    stats = profiler.open("seq_scan", table=table.name,
                          filtered=predicate is not None)
    tally = _Tally()
    return _instrumented(stats,
                         _seq_scan_tallied(table, predicate, tally),
                         tally)


def _fetch_rows(table: Table, row_ids: Iterable[int]) -> Iterator[Row]:
    for row_id in row_ids:
        yield table.as_dict(row_id)


def index_lookup(table: Table, index: HashIndex | SortedIndex,
                 value: object) -> Iterator[Row]:
    """Point lookup through an index."""
    profiler = _plan()
    if profiler is None:
        return _fetch_rows(table, index.lookup(value))
    stats = profiler.open("index_lookup", table=table.name,
                          column=index.column_name)
    tally = _Tally()
    return _instrumented(
        stats, _fetch_rows(table, _tallied(index.lookup(value), tally)),
        tally)


def index_range(table: Table, index: SortedIndex, low: object = None,
                high: object = None) -> Iterator[Row]:
    """Closed-range lookup through a sorted index."""
    profiler = _plan()
    if profiler is None:
        return _fetch_rows(table, index.range(low, high))
    stats = profiler.open("index_range", table=table.name,
                          column=index.column_name)
    tally = _Tally()
    return _instrumented(
        stats,
        _fetch_rows(table, _tallied(index.range(low, high), tally)),
        tally)


# -- tuple-at-a-time operators -----------------------------------------------

def _select(rows: Iterable[Row], predicate: Predicate) -> Iterator[Row]:
    return (row for row in rows if predicate(row))


def select(rows: Iterable[Row], predicate: Predicate) -> Iterator[Row]:
    """Filter."""
    profiler = _plan()
    if profiler is None:
        return _select(rows, predicate)
    stats = profiler.open("select")
    tally = _Tally()
    return _instrumented(stats, _select(_tallied(rows, tally),
                                        predicate), tally)


def _project(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    for row in rows:
        yield {column: row.get(column) for column in columns}


def project(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    """Keep only ``columns``."""
    profiler = _plan()
    if profiler is None:
        return _project(rows, columns)
    stats = profiler.open("project", columns=",".join(columns))
    tally = _Tally()
    return _instrumented(stats, _project(_tallied(rows, tally),
                                         columns), tally)


# -- joins -------------------------------------------------------------------

def _nested_loop_join(outer: Iterable[Row],
                      inner_source: Callable[[], Iterable[Row]],
                      condition: Callable[[Row, Row], bool]
                      ) -> Iterator[Row]:
    for outer_row in outer:
        for inner_row in inner_source():
            if condition(outer_row, inner_row):
                yield {**outer_row, **inner_row}


def nested_loop_join(outer: Iterable[Row], inner_source: Callable[[], Iterable[Row]],
                     condition: Callable[[Row, Row], bool]) -> Iterator[Row]:
    """Naive nested-loop join; ``inner_source`` is re-iterated per outer row."""
    profiler = _plan()
    if profiler is None:
        return _nested_loop_join(outer, inner_source, condition)
    stats = profiler.open("nested_loop_join")
    tally = _Tally()
    return _instrumented(
        stats,
        _nested_loop_join(_tallied(outer, tally),
                          lambda: _tallied(inner_source(), tally),
                          condition),
        tally)


def _hash_join(left: Iterable[Row], right: Iterable[Row], left_key: str,
               right_key: str) -> Iterator[Row]:
    buckets: dict[object, list[Row]] = {}
    for row in left:
        key = row.get(left_key)
        if key is not None:
            buckets.setdefault(key, []).append(row)
    for row in right:
        key = row.get(right_key)
        if key is None:
            continue
        for match in buckets.get(key, ()):
            yield {**match, **row}


def hash_join(left: Iterable[Row], right: Iterable[Row], left_key: str,
              right_key: str) -> Iterator[Row]:
    """Equi-join by building a hash table on the left input."""
    profiler = _plan()
    if profiler is None:
        return _hash_join(left, right, left_key, right_key)
    stats = profiler.open("hash_join", left_key=left_key,
                          right_key=right_key)
    tally = _Tally()
    return _instrumented(
        stats, _hash_join(_tallied(left, tally), _tallied(right, tally),
                          left_key, right_key),
        tally)


def _left_outer_hash_join(left: Iterable[Row], right: Iterable[Row],
                          left_key: str, right_key: str) -> Iterator[Row]:
    buckets: dict[object, list[Row]] = {}
    right_rows = list(right)
    for row in right_rows:
        key = row.get(right_key)
        if key is not None:
            buckets.setdefault(key, []).append(row)
    for row in left:
        key = row.get(left_key)
        matches = buckets.get(key, []) if key is not None else []
        if matches:
            for match in matches:
                yield {**row, **match}
        else:
            yield dict(row)


def left_outer_hash_join(left: Iterable[Row], right: Iterable[Row],
                         left_key: str, right_key: str) -> Iterator[Row]:
    """Left outer equi-join (unmatched left rows pass through)."""
    profiler = _plan()
    if profiler is None:
        return _left_outer_hash_join(left, right, left_key, right_key)
    stats = profiler.open("left_outer_hash_join", left_key=left_key,
                          right_key=right_key)
    tally = _Tally()
    return _instrumented(
        stats,
        _left_outer_hash_join(_tallied(left, tally),
                              _tallied(right, tally),
                              left_key, right_key),
        tally)


# -- sort / group / limit / distinct -----------------------------------------

def _order_by(rows: Iterable[Row],
              keys: list[tuple[str, bool]]) -> list[Row]:
    materialized = list(rows)
    for column, descending in reversed(keys):
        materialized.sort(key=lambda row: sort_key(row.get(column)),
                          reverse=descending)
    return materialized


def order_by(rows: Iterable[Row], keys: list[tuple[str, bool]]) -> list[Row]:
    """Sort rows by (column, descending) keys; NULLs sort first."""
    profiler = _plan()
    if profiler is None:
        return _order_by(rows, keys)
    stats = profiler.open(
        "sort", keys=",".join(column + (" desc" if descending else "")
                              for column, descending in keys))
    start = time.perf_counter()
    materialized = _order_by(rows, keys)
    stats.record(seconds=time.perf_counter() - start,
                 rows_in=len(materialized),
                 rows_out=len(materialized))
    return materialized


def _group_by(rows: Iterable[Row], key_columns: list[str],
              aggregates: dict[str, Callable[[list[Row]], object]]
              ) -> Iterator[Row]:
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in key_columns)
        groups.setdefault(key, []).append(row)
    for key, members in groups.items():
        result = dict(zip(key_columns, key))
        for name, aggregate in aggregates.items():
            result[name] = aggregate(members)
        yield result


def group_by(rows: Iterable[Row], key_columns: list[str],
             aggregates: dict[str, Callable[[list[Row]], object]]
             ) -> Iterator[Row]:
    """Group rows and compute named aggregates per group."""
    profiler = _plan()
    if profiler is None:
        return _group_by(rows, key_columns, aggregates)
    stats = profiler.open("group", keys=",".join(key_columns))
    tally = _Tally()
    return _instrumented(stats, _group_by(_tallied(rows, tally),
                                          key_columns, aggregates),
                         tally)


def _limit(rows: Iterable[Row], count: int) -> Iterator[Row]:
    iterator = iter(rows)
    for _ in range(count):
        try:
            yield next(iterator)
        except StopIteration:
            return


def limit(rows: Iterable[Row], count: int) -> Iterator[Row]:
    """First ``count`` rows."""
    profiler = _plan()
    if profiler is None:
        return _limit(rows, count)
    stats = profiler.open("limit", count=count)
    tally = _Tally()
    return _instrumented(stats, _limit(_tallied(rows, tally), count),
                         tally)


def _distinct(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(row.get(column) for column in columns)
        if key not in seen:
            seen.add(key)
            yield {column: row.get(column) for column in columns}


def distinct(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    """Duplicate elimination over the named columns."""
    profiler = _plan()
    if profiler is None:
        return _distinct(rows, columns)
    stats = profiler.open("distinct", columns=",".join(columns))
    tally = _Tally()
    return _instrumented(stats, _distinct(_tallied(rows, tally),
                                          columns), tally)
