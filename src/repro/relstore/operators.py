"""Iterator-style relational operators.

These are the physical operators the engine analogues compose into query
plans: scans, index lookups, selection, projection, nested-loop and hash
joins, sorting, grouping and limits.  All operate on (and yield) plain
dicts keyed by column name, optionally qualified by the caller.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from .index import HashIndex, SortedIndex
from .table import Table
from .types import sort_key

Row = dict
Predicate = Callable[[Row], bool]


def seq_scan(table: Table, predicate: Optional[Predicate] = None
             ) -> Iterator[Row]:
    """Full table scan with an optional filter."""
    for row_id, _ in table.scan():
        row = table.as_dict(row_id)
        if predicate is None or predicate(row):
            yield row


def index_lookup(table: Table, index: HashIndex | SortedIndex,
                 value: object) -> Iterator[Row]:
    """Point lookup through an index."""
    for row_id in index.lookup(value):
        yield table.as_dict(row_id)


def index_range(table: Table, index: SortedIndex, low: object = None,
                high: object = None) -> Iterator[Row]:
    """Closed-range lookup through a sorted index."""
    for row_id in index.range(low, high):
        yield table.as_dict(row_id)


def select(rows: Iterable[Row], predicate: Predicate) -> Iterator[Row]:
    """Filter."""
    return (row for row in rows if predicate(row))


def project(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    """Keep only ``columns``."""
    for row in rows:
        yield {column: row.get(column) for column in columns}


def nested_loop_join(outer: Iterable[Row], inner_source: Callable[[], Iterable[Row]],
                     condition: Callable[[Row, Row], bool]) -> Iterator[Row]:
    """Naive nested-loop join; ``inner_source`` is re-iterated per outer row."""
    for outer_row in outer:
        for inner_row in inner_source():
            if condition(outer_row, inner_row):
                yield {**outer_row, **inner_row}


def hash_join(left: Iterable[Row], right: Iterable[Row], left_key: str,
              right_key: str) -> Iterator[Row]:
    """Equi-join by building a hash table on the left input."""
    buckets: dict[object, list[Row]] = {}
    for row in left:
        key = row.get(left_key)
        if key is not None:
            buckets.setdefault(key, []).append(row)
    for row in right:
        key = row.get(right_key)
        if key is None:
            continue
        for match in buckets.get(key, ()):
            yield {**match, **row}


def left_outer_hash_join(left: Iterable[Row], right: Iterable[Row],
                         left_key: str, right_key: str) -> Iterator[Row]:
    """Left outer equi-join (unmatched left rows pass through)."""
    buckets: dict[object, list[Row]] = {}
    right_rows = list(right)
    for row in right_rows:
        key = row.get(right_key)
        if key is not None:
            buckets.setdefault(key, []).append(row)
    for row in left:
        key = row.get(left_key)
        matches = buckets.get(key, []) if key is not None else []
        if matches:
            for match in matches:
                yield {**row, **match}
        else:
            yield dict(row)


def order_by(rows: Iterable[Row], keys: list[tuple[str, bool]]) -> list[Row]:
    """Sort rows by (column, descending) keys; NULLs sort first."""
    materialized = list(rows)
    for column, descending in reversed(keys):
        materialized.sort(key=lambda row: sort_key(row.get(column)),
                          reverse=descending)
    return materialized


def group_by(rows: Iterable[Row], key_columns: list[str],
             aggregates: dict[str, Callable[[list[Row]], object]]
             ) -> Iterator[Row]:
    """Group rows and compute named aggregates per group."""
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in key_columns)
        groups.setdefault(key, []).append(row)
    for key, members in groups.items():
        result = dict(zip(key_columns, key))
        for name, aggregate in aggregates.items():
            result[name] = aggregate(members)
        yield result


def limit(rows: Iterable[Row], count: int) -> Iterator[Row]:
    """First ``count`` rows."""
    iterator = iter(rows)
    for _ in range(count):
        try:
            yield next(iterator)
        except StopIteration:
            return


def distinct(rows: Iterable[Row], columns: list[str]) -> Iterator[Row]:
    """Duplicate elimination over the named columns."""
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(row.get(column) for column in columns)
        if key not in seen:
            seen.add(key)
            yield {column: row.get(column) for column in columns}
