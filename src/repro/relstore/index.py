"""Secondary indexes: sorted (B-tree-like) and hash.

A :class:`SortedIndex` keeps ``(key, row_id)`` pairs in a sorted list and
answers point and range lookups by bisection — O(log n) like a B-tree
without the page machinery.  A :class:`HashIndex` answers equality lookups
in O(1).  Both index a single column; NULL keys are not indexed (SQL
semantics: predicates never match NULL).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from ..errors import SchemaError
from .table import Table
from .types import sort_key


class SortedIndex:
    """Ordered index over one column of a table."""

    def __init__(self, table: Table, column_name: str,
                 unique: bool = False) -> None:
        self.table = table
        self.column_name = column_name
        self.unique = unique
        offset = table.offset(column_name)
        entries = []
        for row_id, row in enumerate(table.rows):
            if row is None:
                continue                     # deleted row
            key = row[offset]
            if key is None:
                continue
            entries.append((sort_key(key), row_id))
        entries.sort()
        if unique:
            for previous, current in zip(entries, entries[1:]):
                if previous[0] == current[0]:
                    raise SchemaError(
                        f"unique index {table.name}.{column_name}: "
                        f"duplicate key {current[0][1]!r}")
        self._keys = [entry[0] for entry in entries]
        self._row_ids = [entry[1] for entry in entries]

    def lookup(self, value: object) -> list[int]:
        """Row ids whose column equals ``value``."""
        key = sort_key(value)
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        return self._row_ids[left:right]

    def range(self, low: object = None, high: object = None,
              include_low: bool = True,
              include_high: bool = True) -> list[int]:
        """Row ids with column values in the given (closed) range.

        ``None`` bounds are open ends.  NULLs never match.
        """
        if low is None:
            left = 0
        else:
            key = sort_key(low)
            left = (bisect.bisect_left(self._keys, key) if include_low
                    else bisect.bisect_right(self._keys, key))
        if high is None:
            right = len(self._keys)
        else:
            key = sort_key(high)
            right = (bisect.bisect_right(self._keys, key) if include_high
                     else bisect.bisect_left(self._keys, key))
        return self._row_ids[left:right]

    def first(self) -> Optional[int]:
        """Row id of the smallest key, or None if the index is empty."""
        return self._row_ids[0] if self._row_ids else None

    # -- incremental maintenance (update workload) -------------------------

    def insert(self, value: object, row_id: int) -> None:
        """Add one entry (B-tree style O(log n) locate + insert)."""
        if value is None:
            return
        key = sort_key(value)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def remove(self, value: object, row_id: int) -> None:
        """Remove one entry; silently ignores missing entries."""
        if value is None:
            return
        key = sort_key(value)
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        for position in range(left, right):
            if self._row_ids[position] == row_id:
                del self._keys[position]
                del self._row_ids[position]
                return

    def __len__(self) -> int:
        return len(self._keys)


class HashIndex:
    """Equality-only index over one column of a table."""

    def __init__(self, table: Table, column_name: str,
                 unique: bool = False) -> None:
        self.table = table
        self.column_name = column_name
        self.unique = unique
        offset = table.offset(column_name)
        buckets: dict[object, list[int]] = {}
        for row_id, row in enumerate(table.rows):
            if row is None:
                continue                     # deleted row
            key = row[offset]
            if key is None:
                continue
            bucket = buckets.setdefault(key, [])
            if unique and bucket:
                raise SchemaError(
                    f"unique index {table.name}.{column_name}: "
                    f"duplicate key {key!r}")
            bucket.append(row_id)
        self._buckets = buckets

    def lookup(self, value: object) -> list[int]:
        """Row ids whose column equals ``value``."""
        return list(self._buckets.get(value, ()))

    def insert(self, value: object, row_id: int) -> None:
        """Add one entry."""
        if value is None:
            return
        bucket = self._buckets.setdefault(value, [])
        if self.unique and bucket:
            raise SchemaError(
                f"unique index {self.table.name}.{self.column_name}: "
                f"duplicate key {value!r}")
        bucket.append(row_id)

    def remove(self, value: object, row_id: int) -> None:
        """Remove one entry; silently ignores missing entries."""
        bucket = self._buckets.get(value)
        if bucket and row_id in bucket:
            bucket.remove(row_id)
            if not bucket:
                del self._buckets[value]

    def keys(self) -> Iterator[object]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
