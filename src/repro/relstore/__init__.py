"""Mini relational engine: typed tables, indexes, iterator operators."""

from .database import Database
from .index import HashIndex, SortedIndex
from .operators import (
    distinct,
    group_by,
    hash_join,
    index_lookup,
    index_range,
    left_outer_hash_join,
    limit,
    nested_loop_join,
    order_by,
    project,
    select,
    seq_scan,
)
from .table import Column, Table
from .types import ColumnType, coerce, sort_key

__all__ = [
    "Database",
    "HashIndex",
    "SortedIndex",
    "distinct",
    "group_by",
    "hash_join",
    "index_lookup",
    "index_range",
    "left_outer_hash_join",
    "limit",
    "nested_loop_join",
    "order_by",
    "project",
    "select",
    "seq_scan",
    "Column",
    "Table",
    "ColumnType",
    "coerce",
    "sort_key",
]
