"""Heap tables with typed columns.

Rows are stored as Python lists in insertion order; a row id is its slot
index.  The storage model is deliberately simple — the benchmark compares
architectures (shredded relational vs. native tree), not page layouts —
but all access paths are mediated by the table so the engine can count
rows scanned (used by the index-ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import SchemaError
from ..faults import plan as _faults
from .types import ColumnType, coerce


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    type: ColumnType
    nullable: bool = True


class Table:
    """A heap of typed rows."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name}: no columns")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name}: duplicate column names")
        self.name = name
        self.columns = tuple(columns)
        self.offsets = {column.name: index
                        for index, column in enumerate(columns)}
        # Deleted rows become None tombstones so row ids stay stable
        # (indexes reference row ids); scans skip tombstones.
        self.rows: list[list | None] = []
        self.live_rows = 0
        self.rows_scanned = 0

    def offset(self, column_name: str) -> int:
        """The slot index of ``column_name``."""
        try:
            return self.offsets[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name}: no column {column_name!r}") from None

    def insert(self, values: dict) -> int:
        """Insert a row from a column-name dict; return its row id."""
        row = []
        for column in self.columns:
            value = coerce(values.get(column.name), column.type)
            if value is None and not column.nullable:
                raise SchemaError(
                    f"{self.name}.{column.name} is NOT NULL")
            row.append(value)
        self.rows.append(row)
        self.live_rows += 1
        return len(self.rows) - 1

    def insert_many(self, rows: Iterator[dict]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        _faults.inject("relstore.insert", table=self.name)
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def get(self, row_id: int) -> list:
        """Fetch one row by id (raises on deleted rows)."""
        row = self.rows[row_id]
        if row is None:
            raise SchemaError(f"{self.name}: row {row_id} was deleted")
        return row

    def delete(self, row_id: int) -> None:
        """Tombstone one row (row ids of other rows are unaffected)."""
        if self.rows[row_id] is not None:
            self.rows[row_id] = None
            self.live_rows -= 1

    def update(self, row_id: int, column_name: str,
               value: object) -> object:
        """Set one cell; returns the previous value."""
        offset = self.offset(column_name)
        column = self.columns[offset]
        row = self.get(row_id)
        previous = row[offset]
        row[offset] = coerce(value, column.type)
        return previous

    def value(self, row_id: int, column_name: str) -> object:
        """One cell."""
        return self.get(row_id)[self.offset(column_name)]

    def scan(self) -> Iterator[tuple[int, list]]:
        """Full scan yielding (row_id, row); bumps the scan counter.

        Tombstones are skipped but still counted as scanned pages.
        """
        _faults.inject("relstore.scan", table=self.name)
        for row_id, row in enumerate(self.rows):
            self.rows_scanned += 1
            if row is not None:
                yield row_id, row

    def as_dict(self, row_id: int) -> dict:
        """A row as a column-name dict (for result assembly)."""
        row = self.get(row_id)
        return {column.name: row[index]
                for index, column in enumerate(self.columns)}

    def __len__(self) -> int:
        return self.live_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} rows={len(self.rows)}>"
