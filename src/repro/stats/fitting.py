"""Fit standard probability distributions to collected frequencies.

"Based on the statistics, frequency distributions are computed and
standard probability distributions are fit to the data" (Section 2.1.1).
Candidates are the distributions the generator itself uses — uniform,
normal, exponential and Zipf — so a round trip (generate, analyze, fit)
should recover the generating family; tests assert that it does.

scipy is used when available for maximum-likelihood fits and the
Kolmogorov-Smirnov statistic; a pure-Python moment-based fallback keeps
the module importable without scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:                                    # pragma: no cover - import guard
    from scipy import stats as _scipy_stats
except ImportError:                     # pragma: no cover
    _scipy_stats = None


@dataclass(frozen=True)
class Fit:
    """One candidate distribution's fit quality."""

    family: str
    params: tuple
    score: float          # lower is better (KS statistic or proxy)

    def __str__(self) -> str:
        params = ", ".join(f"{p:.3g}" for p in self.params)
        return f"{self.family}({params}) ks={self.score:.3f}"


def _moments(samples: list[float]) -> tuple[float, float]:
    mean = sum(samples) / len(samples)
    variance = sum((value - mean) ** 2 for value in samples) / len(samples)
    return mean, math.sqrt(variance)


def _ks_statistic(samples: list[float], cdf) -> float:
    """Kolmogorov-Smirnov distance between samples and a model CDF."""
    ordered = sorted(samples)
    n = len(ordered)
    worst = 0.0
    for index, value in enumerate(ordered, start=1):
        model = cdf(value)
        worst = max(worst, abs(index / n - model),
                    abs((index - 1) / n - model))
    return worst


def fit_normal(samples: list[float]) -> Fit:
    """Gaussian fit by moments; KS scored."""
    mean, sd = _moments(samples)
    sd = max(sd, 1e-9)
    if _scipy_stats is not None:
        score = float(_scipy_stats.kstest(samples, "norm",
                                          args=(mean, sd)).statistic)
    else:
        def cdf(value: float) -> float:
            return 0.5 * (1 + math.erf((value - mean) / (sd * math.sqrt(2))))
        score = _ks_statistic(samples, cdf)
    return Fit("normal", (mean, sd), score)


def fit_exponential(samples: list[float]) -> Fit:
    """Exponential fit (MLE mean); KS scored.  Requires positive data."""
    mean = max(sum(samples) / len(samples), 1e-9)
    if _scipy_stats is not None:
        score = float(_scipy_stats.kstest(samples, "expon",
                                          args=(0, mean)).statistic)
    else:
        def cdf(value: float) -> float:
            return 1 - math.exp(-max(value, 0.0) / mean)
        score = _ks_statistic(samples, cdf)
    return Fit("exponential", (mean,), score)


def fit_uniform(samples: list[float]) -> Fit:
    """Uniform on the observed range; KS scored."""
    low, high = min(samples), max(samples)
    span = max(high - low, 1e-9)

    def cdf(value: float) -> float:
        return min(max((value - low) / span, 0.0), 1.0)

    return Fit("uniform", (low, high), _ks_statistic(samples, cdf))


def fit_zipf(rank_frequencies: list[int]) -> Fit:
    """Fit a Zipf exponent to rank-ordered frequencies.

    ``rank_frequencies`` must be sorted descending (frequency of rank 1,
    rank 2, ...).  The exponent is estimated by least squares on the
    log-log rank/frequency line; the score is the RMS residual.
    """
    points = [(math.log(rank), math.log(freq))
              for rank, freq in enumerate(rank_frequencies, start=1)
              if freq > 0]
    if len(points) < 2:
        return Fit("zipf", (1.0,), float("inf"))
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    slope = (n * sum_xy - sum_x * sum_y) / max(denominator, 1e-12)
    intercept = (sum_y - slope * sum_x) / n
    residual = math.sqrt(sum((y - (slope * x + intercept)) ** 2
                             for x, y in points) / n)
    return Fit("zipf", (-slope,), residual)


def best_fit(samples: list[float]) -> Fit:
    """The best (lowest-KS) of the continuous candidate families."""
    if not samples:
        raise ValueError("cannot fit an empty sample")
    values = [float(value) for value in samples]
    candidates = [fit_normal(values), fit_uniform(values)]
    if min(values) >= 0:
        candidates.append(fit_exponential(values))
    return min(candidates, key=lambda fit: fit.score)
