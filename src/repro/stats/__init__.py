"""Corpus statistics analysis and distribution fitting (Section 2.1.1)."""

from .analyzer import CorpusStats, analyze_corpus, format_table2
from .fitting import Fit, best_fit, fit_exponential, fit_normal, \
    fit_uniform, fit_zipf

__all__ = [
    "CorpusStats",
    "analyze_corpus",
    "format_table2",
    "Fit",
    "best_fit",
    "fit_exponential",
    "fit_normal",
    "fit_uniform",
    "fit_zipf",
]
