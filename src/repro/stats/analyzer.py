"""Statistical analysis of XML corpora (paper Section 2.1.1).

The paper's database design starts from "detailed statistical analysis of
a number of XML data sets": element-type inventory, parent/child
relationships, occurrence distributions of child elements per parent,
value and attribute distributions.  This module implements that analysis;
:mod:`repro.stats.fitting` fits standard probability distributions to the
collected frequencies.

The original corpora (GCIDE, OED, Reuters, Springer) are proprietary, so
the benchmark's Table 2 analogue runs the analyzer over this package's
own generated corpora — same method, synthetic subjects.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..xml.nodes import Document, Element, Text


@dataclass
class CorpusStats:
    """Everything the analyzer collects over one corpus."""

    source: str = ""
    files: int = 0
    file_sizes: list[int] = field(default_factory=list)
    #: element tag -> instance count
    element_counts: Counter = field(default_factory=Counter)
    #: (parent tag, child tag) -> list of per-parent occurrence counts
    child_occurrences: dict = field(default_factory=dict)
    #: attribute name -> instance count
    attribute_counts: Counter = field(default_factory=Counter)
    #: element tag -> list of text lengths
    text_lengths: dict = field(default_factory=dict)
    max_depth: int = 0
    text_bytes: int = 0
    #: tags observed with both text and element children
    mixed_tags: set = field(default_factory=set)

    # -- derived metrics -------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(self.file_sizes)

    @property
    def distinct_element_types(self) -> int:
        return len(self.element_counts)

    @property
    def total_elements(self) -> int:
        return sum(self.element_counts.values())

    def file_size_range(self) -> tuple[int, int]:
        """[min, max] file size, the paper's Table 2 "File size" column."""
        if not self.file_sizes:
            return (0, 0)
        return (min(self.file_sizes), max(self.file_sizes))

    def text_ratio(self) -> float:
        """Fraction of the corpus bytes that is character data — the
        text-centric vs data-centric discriminator."""
        if not self.total_bytes:
            return 0.0
        return self.text_bytes / self.total_bytes

    def occurrence_samples(self, parent: str, child: str) -> list[int]:
        """Per-parent occurrence counts of ``child`` under ``parent``."""
        return list(self.child_occurrences.get((parent, child), ()))

    def parent_child_pairs(self) -> list[tuple[str, str]]:
        """The observed schema structure (parent/child relationships)."""
        return sorted(self.child_occurrences)


def analyze_corpus(documents: list[Document], source: str = "",
                   sizes: list[int] | None = None) -> CorpusStats:
    """Collect :class:`CorpusStats` over a list of documents.

    ``sizes`` optionally supplies serialized byte sizes (so callers who
    already have the text do not pay a re-serialization); otherwise sizes
    are measured by serializing.
    """
    stats = CorpusStats(source=source, files=len(documents))
    if sizes is not None:
        stats.file_sizes = list(sizes)
    else:
        from ..xml.serializer import serialize
        stats.file_sizes = [len(serialize(document))
                            for document in documents]
    for document in documents:
        _analyze_element(document.root_element, stats, depth=1)
    return stats


def _analyze_element(element: Element, stats: CorpusStats,
                     depth: int) -> None:
    stats.max_depth = max(stats.max_depth, depth)
    stats.element_counts[element.tag] += 1
    for attr_name in element.attributes:
        stats.attribute_counts[attr_name] += 1

    child_tags = Counter()
    text_length = 0
    has_text = False
    for child in element.children:
        if isinstance(child, Element):
            child_tags[child.tag] += 1
            _analyze_element(child, stats, depth + 1)
        elif isinstance(child, Text):
            stripped = child.text.strip()
            if stripped:
                has_text = True
            text_length += len(child.text)

    if has_text and child_tags:
        stats.mixed_tags.add(element.tag)
    if text_length:
        stats.text_bytes += text_length
        stats.text_lengths.setdefault(element.tag, []).append(text_length)
    for child_tag, count in child_tags.items():
        stats.child_occurrences.setdefault(
            (element.tag, child_tag), []).append(count)


def format_table2(rows: list[CorpusStats]) -> str:
    """A Table 2 analogue: sources, file counts, size ranges, data size."""
    lines = ["Table 2. Analyzed TC Class Data (this reproduction's "
             "synthetic corpora)",
             f"{'Source':<16}{'No. files':>10}{'File size':>22}"
             f"{'Data size (KB)':>16}"]
    lines.append("-" * len(lines[1]))
    for stats in rows:
        low, high = stats.file_size_range()
        if stats.files == 1:
            size_text = f"{high / 1024:.0f} KB"
        else:
            size_text = f"[{low / 1024:.1f}, {high / 1024:.1f}] KB"
        lines.append(f"{stats.source:<16}{stats.files:>10}"
                     f"{size_text:>22}{stats.total_bytes / 1024:>16.0f}")
    return "\n".join(lines)
