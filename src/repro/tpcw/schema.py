"""TPC-W relational schema (the paper's data-centric substrate).

The paper takes the eight base TPC-W tables, adds AUTHOR_2 (extra author
contact information) and PUBLISHER, and maps them to XML two ways (nested
join mapping for the DC/SD catalog, flat translation for DC/MD).  This
module declares the table shapes; :mod:`repro.tpcw.population` fills them
and :mod:`repro.tpcw.mapping` converts them to XML.

Rows are plain dicts keyed by column name; a :class:`TableDef` records the
column order, primary key and foreign keys so the mini relational engine
and the mappings can be driven generically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ForeignKey:
    """``column`` references ``table``.``target_column``."""

    column: str
    table: str
    target_column: str


@dataclass(frozen=True)
class TableDef:
    """Shape of one relational table."""

    name: str
    columns: tuple[str, ...]
    primary_key: str
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)


COUNTRY = TableDef(
    name="COUNTRY",
    columns=("co_id", "co_name", "co_currency", "co_exchange"),
    primary_key="co_id",
)

ADDRESS = TableDef(
    name="ADDRESS",
    columns=("addr_id", "addr_street1", "addr_street2", "addr_city",
             "addr_state", "addr_zip", "addr_co_id"),
    primary_key="addr_id",
    foreign_keys=(ForeignKey("addr_co_id", "COUNTRY", "co_id"),),
)

AUTHOR = TableDef(
    name="AUTHOR",
    columns=("a_id", "a_fname", "a_mname", "a_lname", "a_dob", "a_bio"),
    primary_key="a_id",
)

# Added by XBench: supplementary author contact information.
AUTHOR_2 = TableDef(
    name="AUTHOR_2",
    columns=("a2_id", "a2_addr_id", "a2_phone", "a2_email"),
    primary_key="a2_id",
    foreign_keys=(ForeignKey("a2_id", "AUTHOR", "a_id"),
                  ForeignKey("a2_addr_id", "ADDRESS", "addr_id")),
)

# Added by XBench: publisher name/fax/phone/email (fax may be NULL - Q14).
PUBLISHER = TableDef(
    name="PUBLISHER",
    columns=("pub_id", "pub_name", "pub_phone", "pub_fax", "pub_email"),
    primary_key="pub_id",
)

ITEM = TableDef(
    name="ITEM",
    columns=("i_id", "i_title", "i_pub_id", "i_pub_date", "i_subject",
             "i_desc", "i_srp", "i_cost", "i_isbn", "i_page", "i_backing",
             "i_avail"),
    primary_key="i_id",
    foreign_keys=(ForeignKey("i_pub_id", "PUBLISHER", "pub_id"),),
)

# XBench items may have several authors (Q7 quantifies over them); the
# association is its own table, as a join of ITEM and AUTHOR.
ITEM_AUTHOR = TableDef(
    name="ITEM_AUTHOR",
    columns=("ia_i_id", "ia_a_id", "ia_rank"),
    primary_key="ia_i_id",      # composite in spirit; (i_id, rank) unique
    foreign_keys=(ForeignKey("ia_i_id", "ITEM", "i_id"),
                  ForeignKey("ia_a_id", "AUTHOR", "a_id")),
)

CUSTOMER = TableDef(
    name="CUSTOMER",
    columns=("c_id", "c_uname", "c_fname", "c_lname", "c_addr_id",
             "c_phone", "c_email", "c_since", "c_discount"),
    primary_key="c_id",
    foreign_keys=(ForeignKey("c_addr_id", "ADDRESS", "addr_id"),),
)

ORDERS = TableDef(
    name="ORDERS",
    columns=("o_id", "o_c_id", "o_date", "o_total", "o_ship_type",
             "o_ship_date", "o_status", "o_bill_addr_id", "o_ship_addr_id"),
    primary_key="o_id",
    foreign_keys=(ForeignKey("o_c_id", "CUSTOMER", "c_id"),
                  ForeignKey("o_bill_addr_id", "ADDRESS", "addr_id"),
                  ForeignKey("o_ship_addr_id", "ADDRESS", "addr_id")),
)

ORDER_LINE = TableDef(
    name="ORDER_LINE",
    columns=("ol_id", "ol_o_id", "ol_i_id", "ol_qty", "ol_discount",
             "ol_comments"),
    primary_key="ol_id",
    foreign_keys=(ForeignKey("ol_o_id", "ORDERS", "o_id"),
                  ForeignKey("ol_i_id", "ITEM", "i_id")),
)

CC_XACTS = TableDef(
    name="CC_XACTS",
    columns=("cx_o_id", "cx_type", "cx_num", "cx_name", "cx_expire",
             "cx_auth_id", "cx_xact_amt", "cx_xact_date", "cx_co_id"),
    primary_key="cx_o_id",
    foreign_keys=(ForeignKey("cx_o_id", "ORDERS", "o_id"),
                  ForeignKey("cx_co_id", "COUNTRY", "co_id")),
)

ALL_TABLES: tuple[TableDef, ...] = (
    COUNTRY, ADDRESS, AUTHOR, AUTHOR_2, PUBLISHER, ITEM, ITEM_AUTHOR,
    CUSTOMER, ORDERS, ORDER_LINE, CC_XACTS,
)

TABLES_BY_NAME: dict[str, TableDef] = {t.name: t for t in ALL_TABLES}

# The five tables the paper maps with flat translation to DC/MD documents.
FLAT_TRANSLATION_TABLES = ("CUSTOMER", "ITEM", "AUTHOR", "ADDRESS",
                           "COUNTRY")
