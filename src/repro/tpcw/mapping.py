"""Relational-to-XML mappings (paper Section 2.1.2).

Two mapping algorithms are implemented exactly as the paper describes:

* **Nested join mapping** (:func:`build_catalog`): pick a main table
  (ITEM), map it to XML, then recursively insert all matching tuples of
  joined tables (AUTHOR via ITEM_AUTHOR, AUTHOR_2, ADDRESS, COUNTRY,
  PUBLISHER) as sub-elements, following foreign keys.  Each join level
  adds depth — producing the deep ``catalog.xml`` of the DC/SD class.

* **Flat translation** (:func:`flat_translation`): map a relation to an
  element type, each tuple to an instance, each column to a sub-element.
  NULL columns are omitted (missing elements).  Used for CUSTOMER, ITEM,
  AUTHOR, ADDRESS and COUNTRY in the DC/MD class.

ORDERS ⋈ ORDER_LINE ⋈ CC_XACTS is mapped to one document per order
(:func:`build_order_documents`), each holding exactly one order.
"""

from __future__ import annotations

from ..xml.nodes import Document, Element
from .population import Population
from .schema import TABLES_BY_NAME


def _append_value(parent: Element, tag: str, value: object) -> None:
    """Append ``<tag>value</tag>`` unless the value is NULL."""
    if value is None:
        return
    parent.append_element(tag, text=str(value))


# -- nested join mapping: catalog.xml (DC/SD) ---------------------------------

def build_catalog(population: Population) -> Document:
    """Map ITEM ⋈ ITEM_AUTHOR ⋈ AUTHOR ⋈ AUTHOR_2 ⋈ ADDRESS ⋈ COUNTRY
    ⋈ PUBLISHER into a single deep ``catalog.xml`` document."""
    authors = {row["a_id"]: row for row in population.author}
    author_extra = {row["a2_id"]: row for row in population.author_2}
    addresses = {row["addr_id"]: row for row in population.address}
    countries = {row["co_id"]: row for row in population.country}
    publishers = {row["pub_id"]: row for row in population.publisher}
    authors_by_item: dict[int, list[dict]] = {}
    for link in population.item_author:
        authors_by_item.setdefault(link["ia_i_id"], []).append(link)
    for links in authors_by_item.values():
        links.sort(key=lambda link: link["ia_rank"])

    root = Element("catalog")
    for item in population.item:
        root.append(_catalog_item(item, authors_by_item, authors,
                                  author_extra, addresses, countries,
                                  publishers))
    document = Document(root, name="catalog.xml")
    document.refresh_order()
    return document


def _catalog_item(item: dict, authors_by_item: dict, authors: dict,
                  author_extra: dict, addresses: dict, countries: dict,
                  publishers: dict) -> Element:
    element = Element("item", {"id": str(item["i_id"])})
    _append_value(element, "title", item["i_title"])
    _append_value(element, "subject", item["i_subject"])
    _append_value(element, "description", item["i_desc"])
    _append_value(element, "isbn", item["i_isbn"])
    _append_value(element, "date_of_release", item["i_pub_date"])
    _append_value(element, "number_of_pages", item["i_page"])
    _append_value(element, "backing", item["i_backing"])
    _append_value(element, "availability_date", item["i_avail"])

    pricing = element.append_element("pricing")
    _append_value(pricing, "suggested_retail_price", item["i_srp"])
    _append_value(pricing, "cost", item["i_cost"])

    authors_element = element.append_element("authors")
    for link in authors_by_item.get(item["i_id"], []):
        author = authors[link["ia_a_id"]]
        authors_element.append(
            _catalog_author(author, author_extra, addresses, countries))

    publisher = publishers[item["i_pub_id"]]
    publisher_element = element.append_element(
        "publisher", {"id": str(publisher["pub_id"])})
    _append_value(publisher_element, "name", publisher["pub_name"])
    _append_value(publisher_element, "phone", publisher["pub_phone"])
    _append_value(publisher_element, "fax", publisher["pub_fax"])
    _append_value(publisher_element, "email", publisher["pub_email"])
    return element


def _catalog_author(author: dict, author_extra: dict, addresses: dict,
                    countries: dict) -> Element:
    element = Element("author", {"id": str(author["a_id"])})
    name = element.append_element("name")
    _append_value(name, "first_name", author["a_fname"])
    _append_value(name, "middle_name", author["a_mname"])
    _append_value(name, "last_name", author["a_lname"])
    _append_value(element, "date_of_birth", author["a_dob"])
    _append_value(element, "biography", author["a_bio"])

    extra = author_extra.get(author["a_id"])
    if extra is None:
        return element
    contact = element.append_element("contact_information")
    address = addresses.get(extra["a2_addr_id"])
    if address is not None:
        contact.append(_mailing_address(address, countries))
    _append_value(contact, "phone", extra["a2_phone"])
    _append_value(contact, "email", extra["a2_email"])
    return element


def _mailing_address(address: dict, countries: dict) -> Element:
    element = Element("mailing_address")
    _append_value(element, "street1", address["addr_street1"])
    _append_value(element, "street2", address["addr_street2"])
    _append_value(element, "city", address["addr_city"])
    _append_value(element, "state", address["addr_state"])
    _append_value(element, "zip", address["addr_zip"])
    country = countries.get(address["addr_co_id"])
    if country is not None:
        country_element = element.append_element("country")
        _append_value(country_element, "name", country["co_name"])
        _append_value(country_element, "currency", country["co_currency"])
    return element


# -- flat translation (DC/MD side documents) -------------------------------------

# Root/row element names for the five flat-translated tables.
FLAT_DOCUMENT_NAMES = {
    "CUSTOMER": ("customers", "customer", "customer.xml"),
    "ITEM": ("items", "item", "item.xml"),
    "AUTHOR": ("authors", "author", "author.xml"),
    "ADDRESS": ("addresses", "address", "address.xml"),
    "COUNTRY": ("countries", "country", "country.xml"),
}


def flat_translation(table_name: str, rows: list[dict]) -> Document:
    """Flat-translate one table into a single XML document."""
    root_tag, row_tag, file_name = FLAT_DOCUMENT_NAMES[table_name]
    table = TABLES_BY_NAME[table_name]
    root = Element(root_tag)
    for row in rows:
        row_element = root.append_element(row_tag)
        for column in table.columns:
            _append_value(row_element, column, row.get(column))
    document = Document(root, name=file_name)
    document.refresh_order()
    return document


def flat_documents(population: Population) -> list[Document]:
    """The five flat-translated side documents of the DC/MD class."""
    return [flat_translation(name, population.rows(name))
            for name in FLAT_DOCUMENT_NAMES]


# -- per-order documents: orderXXX.xml (DC/MD) --------------------------------------

def build_order_documents(population: Population) -> list[Document]:
    """Join ORDERS ⋈ ORDER_LINE ⋈ CC_XACTS and emit one document per
    order (``order1.xml`` ... ``orderN.xml``)."""
    lines_by_order: dict[int, list[dict]] = {}
    for line in population.order_line:
        lines_by_order.setdefault(line["ol_o_id"], []).append(line)
    xact_by_order = {row["cx_o_id"]: row for row in population.cc_xacts}
    addresses = {row["addr_id"]: row for row in population.address}
    countries = {row["co_id"]: row for row in population.country}

    documents = []
    for order in population.orders:
        documents.append(_order_document(order,
                                         lines_by_order.get(order["o_id"], []),
                                         xact_by_order.get(order["o_id"]),
                                         addresses, countries))
    return documents


def _order_document(order: dict, lines: list[dict], xact: dict | None,
                    addresses: dict, countries: dict) -> Document:
    root = Element("order", {"id": str(order["o_id"])})
    _append_value(root, "customer_id", order["o_c_id"])
    _append_value(root, "order_date", order["o_date"])
    _append_value(root, "total", order["o_total"])

    # Q9 relies on the status being nested under intermediate elements
    # whose names a path query may not know: order/*/*/order_status.
    shipping = root.append_element("shipping_information")
    _append_value(shipping, "ship_type", order["o_ship_type"])
    _append_value(shipping, "ship_date", order["o_ship_date"])
    delivery = shipping.append_element("delivery")
    _append_value(delivery, "order_status", order["o_status"])
    ship_address = addresses.get(order["o_ship_addr_id"])
    if ship_address is not None:
        shipping.append(_order_address("shipping_address", ship_address,
                                       countries))

    billing = root.append_element("billing_information")
    if xact is not None:
        card = billing.append_element("credit_card")
        _append_value(card, "cc_type", xact["cx_type"])
        _append_value(card, "cc_number", xact["cx_num"])
        _append_value(card, "cc_name", xact["cx_name"])
        _append_value(card, "cc_expire", xact["cx_expire"])
        _append_value(card, "cc_auth_id", xact["cx_auth_id"])
        _append_value(card, "transaction_amount", xact["cx_xact_amt"])
        _append_value(card, "transaction_date", xact["cx_xact_date"])
    bill_address = addresses.get(order["o_bill_addr_id"])
    if bill_address is not None:
        billing.append(_order_address("billing_address", bill_address,
                                      countries))

    lines_element = root.append_element("order_lines")
    for line in sorted(lines, key=lambda row: row["ol_id"]):
        line_element = lines_element.append_element(
            "order_line", {"id": str(line["ol_id"])})
        _append_value(line_element, "item_id", line["ol_i_id"])
        _append_value(line_element, "quantity", line["ol_qty"])
        _append_value(line_element, "discount", line["ol_discount"])
        _append_value(line_element, "comments", line["ol_comments"])

    document = Document(root, name=f"order{order['o_id']}.xml")
    document.refresh_order()
    return document


def _order_address(tag: str, address: dict, countries: dict) -> Element:
    element = Element(tag)
    _append_value(element, "street1", address["addr_street1"])
    _append_value(element, "street2", address["addr_street2"])
    _append_value(element, "city", address["addr_city"])
    _append_value(element, "zip", address["addr_zip"])
    country = countries.get(address["addr_co_id"])
    if country is not None:
        _append_value(element, "country", country["co_name"])
    return element
