"""TPC-W substrate: schema, population, relational-to-XML mappings."""

from .mapping import (
    FLAT_DOCUMENT_NAMES,
    build_catalog,
    build_order_documents,
    flat_documents,
    flat_translation,
)
from .population import Population, populate
from .schema import (
    ALL_TABLES,
    FLAT_TRANSLATION_TABLES,
    TABLES_BY_NAME,
    ForeignKey,
    TableDef,
)

__all__ = [
    "FLAT_DOCUMENT_NAMES",
    "build_catalog",
    "build_order_documents",
    "flat_documents",
    "flat_translation",
    "Population",
    "populate",
    "ALL_TABLES",
    "FLAT_TRANSLATION_TABLES",
    "TABLES_BY_NAME",
    "ForeignKey",
    "TableDef",
]
