"""Deterministic population generator for the TPC-W tables.

Cardinalities scale from two knobs — ``num_items`` (DC/SD driver) and
``num_orders`` (DC/MD driver) — the way TPC-W scales everything from the
item count and the number of EBs.  All randomness is seeded.

NULL is represented as ``None``; the mappings drop the corresponding XML
element entirely (missing element, Q14) or emit an empty element
(empty value, Q15), matching the irregularity classes the workload probes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..toxgene.text import (
    CITIES,
    COUNTRIES,
    SUBJECTS,
    TextPool,
    email_address,
    person_name,
    phone_number,
    random_date,
)

SHIP_TYPES = ("AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL")
ORDER_STATUSES = ("PENDING", "PROCESSING", "SHIPPED", "DENIED")
CC_TYPES = ("VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS")
BACKINGS = ("HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-EDITION")

# Fraction of publishers without a fax number (drives Q14 selectivity).
MISSING_FAX_RATE = 0.4


@dataclass
class Population:
    """All generated rows, one list of dicts per table."""

    country: list[dict] = field(default_factory=list)
    address: list[dict] = field(default_factory=list)
    author: list[dict] = field(default_factory=list)
    author_2: list[dict] = field(default_factory=list)
    publisher: list[dict] = field(default_factory=list)
    item: list[dict] = field(default_factory=list)
    item_author: list[dict] = field(default_factory=list)
    customer: list[dict] = field(default_factory=list)
    orders: list[dict] = field(default_factory=list)
    order_line: list[dict] = field(default_factory=list)
    cc_xacts: list[dict] = field(default_factory=list)

    def rows(self, table_name: str) -> list[dict]:
        """Rows of the named table (schema names, e.g. ``ORDER_LINE``)."""
        return getattr(self, table_name.lower())


def populate(num_items: int = 100, num_orders: int = 100,
             seed: int = 42) -> Population:
    """Generate a full population.

    Derived cardinalities follow TPC-W's proportions loosely:
    one author per ~2 items (authors write several books), one customer
    per ~3 orders, 1-5 order lines per order, exactly one credit-card
    transaction per order.
    """
    rng = random.Random(seed)
    pool = TextPool()
    pop = Population()

    _populate_countries(pop)
    num_authors = max(num_items // 2, 3)
    num_publishers = max(num_items // 10, 2)
    num_customers = max(num_orders // 3, 2)

    _populate_addresses(pop, rng,
                        count=num_authors + num_customers + num_orders // 2)
    _populate_authors(pop, rng, pool, num_authors)
    _populate_publishers(pop, rng, num_publishers)
    _populate_items(pop, rng, pool, num_items)
    _populate_customers(pop, rng, num_customers)
    _populate_orders(pop, rng, pool, num_orders)
    return pop


def _populate_countries(pop: Population) -> None:
    for index, name in enumerate(COUNTRIES, start=1):
        pop.country.append({
            "co_id": index,
            "co_name": name,
            "co_currency": ["CAD", "USD", "EUR", "GBP", "JPY"][index % 5],
            "co_exchange": round(0.5 + (index * 0.173) % 2.0, 4),
        })


def _populate_addresses(pop: Population, rng: random.Random,
                        count: int) -> None:
    for index in range(1, count + 1):
        pop.address.append({
            "addr_id": index,
            "addr_street1": f"{rng.randint(1, 999)} "
                            f"{rng.choice(CITIES).lower()} street",
            "addr_street2": (f"suite {rng.randint(1, 99)}"
                             if rng.random() < 0.3 else None),
            "addr_city": rng.choice(CITIES),
            "addr_state": (f"state-{rng.randint(1, 50)}"
                           if rng.random() < 0.7 else None),
            "addr_zip": f"{rng.randint(10000, 99999)}",
            "addr_co_id": rng.randint(1, len(pop.country)),
        })


def _populate_authors(pop: Population, rng: random.Random, pool: TextPool,
                      count: int) -> None:
    for index in range(1, count + 1):
        first, last = person_name(rng)
        middle = person_name(rng)[0] if rng.random() < 0.4 else None
        pop.author.append({
            "a_id": index,
            "a_fname": first,
            "a_mname": middle,
            "a_lname": last,
            "a_dob": random_date(rng, 1920, 1980),
            "a_bio": pool.paragraph(rng, rng.randint(1, 3)),
        })
        pop.author_2.append({
            "a2_id": index,
            "a2_addr_id": rng.randint(1, len(pop.address)),
            "a2_phone": phone_number(rng),
            "a2_email": email_address(rng, first, f"{last}{index}"),
        })


def _populate_publishers(pop: Population, rng: random.Random,
                         count: int) -> None:
    for index in range(1, count + 1):
        name = f"{person_name(rng)[1]} & {person_name(rng)[1]} press"
        pop.publisher.append({
            "pub_id": index,
            "pub_name": name,
            "pub_phone": phone_number(rng),
            "pub_fax": (phone_number(rng)
                        if rng.random() >= MISSING_FAX_RATE else None),
            "pub_email": f"contact{index}@publisher.example.org",
        })


def _populate_items(pop: Population, rng: random.Random, pool: TextPool,
                    count: int) -> None:
    for index in range(1, count + 1):
        srp = round(rng.uniform(5.0, 120.0), 2)
        pop.item.append({
            "i_id": index,
            "i_title": " ".join(pool.words_sample(rng, rng.randint(2, 6))),
            "i_pub_id": rng.randint(1, len(pop.publisher)),
            "i_pub_date": random_date(rng, 1990, 2003),
            "i_subject": rng.choice(SUBJECTS),
            "i_desc": pool.paragraph(rng, rng.randint(1, 4)),
            "i_srp": srp,
            "i_cost": round(srp * rng.uniform(0.4, 0.9), 2),
            "i_isbn": f"{rng.randint(0, 9)}-{rng.randint(1000, 9999)}-"
                      f"{rng.randint(1000, 9999)}-{rng.randint(0, 9)}",
            "i_page": rng.randint(40, 1400),
            "i_backing": rng.choice(BACKINGS),
            "i_avail": random_date(rng, 2000, 2004),
        })
        author_count = rng.choices([1, 2, 3], weights=[6, 3, 1], k=1)[0]
        author_ids = rng.sample(range(1, len(pop.author) + 1),
                                min(author_count, len(pop.author)))
        for rank, author_id in enumerate(author_ids, start=1):
            pop.item_author.append({
                "ia_i_id": index,
                "ia_a_id": author_id,
                "ia_rank": rank,
            })


def _populate_customers(pop: Population, rng: random.Random,
                        count: int) -> None:
    for index in range(1, count + 1):
        first, last = person_name(rng)
        pop.customer.append({
            "c_id": index,
            "c_uname": f"{first.lower()}{last.lower()}{index}",
            "c_fname": first,
            "c_lname": last,
            "c_addr_id": rng.randint(1, len(pop.address)),
            "c_phone": phone_number(rng),
            "c_email": email_address(rng, first, f"{last}{index}"),
            "c_since": random_date(rng, 1996, 2003),
            "c_discount": round(rng.uniform(0.0, 0.5), 2),
        })


def _populate_orders(pop: Population, rng: random.Random, pool: TextPool,
                     count: int) -> None:
    line_id = 0
    for index in range(1, count + 1):
        order_date = random_date(rng, 2001, 2003)
        status = rng.choice(ORDER_STATUSES)
        line_count = rng.randint(1, 5)
        lines = []
        total = 0.0
        for _ in range(line_count):
            line_id += 1
            item_id = rng.randint(1, len(pop.item))
            quantity = rng.randint(1, 9)
            total += pop.item[item_id - 1]["i_srp"] * quantity
            lines.append({
                "ol_id": line_id,
                "ol_o_id": index,
                "ol_i_id": item_id,
                "ol_qty": quantity,
                "ol_discount": round(rng.uniform(0.0, 0.3), 2),
                "ol_comments": (pool.sentence(rng, 6)
                                if rng.random() < 0.5 else None),
            })
        pop.order_line.extend(lines)
        pop.orders.append({
            "o_id": index,
            "o_c_id": rng.randint(1, len(pop.customer)),
            "o_date": order_date,
            "o_total": round(total, 2),
            "o_ship_type": rng.choice(SHIP_TYPES),
            "o_ship_date": random_date(rng, 2001, 2004),
            "o_status": status,
            "o_bill_addr_id": rng.randint(1, len(pop.address)),
            "o_ship_addr_id": rng.randint(1, len(pop.address)),
        })
        first, last = person_name(rng)
        pop.cc_xacts.append({
            "cx_o_id": index,
            "cx_type": rng.choice(CC_TYPES),
            "cx_num": f"{rng.randint(1000, 9999)}-XXXX-XXXX-"
                      f"{rng.randint(1000, 9999)}",
            "cx_name": f"{first} {last}",
            "cx_expire": random_date(rng, 2004, 2008),
            "cx_auth_id": f"AUTH{rng.randint(100000, 999999)}",
            "cx_xact_amt": round(total, 2),
            "cx_xact_date": order_date,
            "cx_co_id": rng.randint(1, len(pop.country)),
        })
