"""EXPLAIN ANALYZE: operator-level query-plan profiling.

A :class:`PlanProfiler` records, per query execution, a tree of operator
nodes — "seq_scan", "hash_join", "xquery.PathExpr", "native.index_lookup"
— each carrying wall-time, rows-in/rows-out cardinalities, call counts
and access-path attributes.  It is the paper-analysis layer the aggregate
counters cannot provide: *which* access path answered Q5, how many rows
the side-table scan touched before the anti-join, whether the native
engine hit an index or fell back to a collection scan.

Structure mirrors PostgreSQL's ``EXPLAIN ANALYZE`` conventions:

* operator times are **inclusive** (an operator's time contains the time
  spent pulling rows from its inputs), so any single operator's time is
  bounded by the query total;
* repeated executions of the same shape **merge**: node identity is
  ``(parent, op, attrs)``, and ``calls`` counts how often it ran — warm
  repeats and per-document re-evaluation fold into one readable tree
  instead of thousands of nodes.

Trees are grouped by attribute signature (``qid``/``engine``/``class``/
``scale``/``stream``…): one merged tree per benchmark cell or per
multiuser stream.  The per-thread stack of open nodes is thread-local,
so concurrent streams can never cross-link parents.

Like the rest of :mod:`repro.obs`, nothing here is imported by the
instrumented layers directly — they go through the hook functions in
:mod:`repro.obs.recorder` (``plan``, ``plan_node``, ``plan_tree``,
``plan_scope``), which cost one global read when observability is off.
"""

from __future__ import annotations

import threading
import time


def _attr_key(attrs: dict) -> tuple:
    """Canonical, hashable identity of an attribute dict."""
    return tuple(sorted((name, str(value))
                        for name, value in attrs.items()))


class PlanNode:
    """One merged operator node of a plan tree."""

    __slots__ = ("op", "attrs", "calls", "seconds", "rows_in",
                 "rows_out", "children", "_child_index")

    def __init__(self, op: str, attrs: dict | None = None) -> None:
        self.op = op
        self.attrs = dict(attrs or {})
        self.calls = 0
        self.seconds = 0.0
        self.rows_in = 0
        self.rows_out = 0
        self.children: list[PlanNode] = []
        self._child_index: dict[tuple, PlanNode] = {}

    def child(self, op: str, attrs: dict) -> "PlanNode":
        """The merged child for ``(op, attrs)``, created on first use."""
        key = (op, _attr_key(attrs))
        node = self._child_index.get(key)
        if node is None:
            node = PlanNode(op, attrs)
            self._child_index[key] = node
            self.children.append(node)
        return node

    def add(self, calls: int = 0, seconds: float = 0.0,
            rows_in: int = 0, rows_out: int = 0) -> None:
        self.calls += calls
        self.seconds += seconds
        self.rows_in += rows_in
        self.rows_out += rows_out

    def total_nodes(self) -> int:
        return 1 + sum(child.total_nodes() for child in self.children)

    def walk(self):
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> dict:
        """Nested JSON-ready dict."""
        record = {"op": self.op, "calls": self.calls,
                  "seconds": self.seconds, "rows_in": self.rows_in,
                  "rows_out": self.rows_out}
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [child.to_record()
                                  for child in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PlanNode {self.op} calls={self.calls} "
                f"out={self.rows_out}>")


class PlanTree:
    """One merged plan tree, labeled by its attribute signature."""

    __slots__ = ("attrs", "root")

    def __init__(self, attrs: dict) -> None:
        self.attrs = dict(attrs)
        self.root = PlanNode("query", {})

    def to_record(self) -> dict:
        return {"attrs": dict(self.attrs), "root": self.root.to_record()}


class _NullPlanNode:
    """Shared do-nothing node handle while plan profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullPlanNode":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, rows_in: int = 0, rows_out: int = 0) -> "_NullPlanNode":
        return self

    def set(self, **attrs) -> "_NullPlanNode":
        return self


#: Shared no-op handle — identity-comparable so tests can assert the
#: disabled path short-circuits without allocating.
NULL_PLAN_NODE = _NullPlanNode()


class _OpStats:
    """Deferred-stats handle for iterator operators.

    ``open()`` binds the merged node at *call* time (capturing the right
    parent), the operator records once when its iterator finishes.
    """

    __slots__ = ("_profiler", "_node")

    def __init__(self, profiler: "PlanProfiler", node: PlanNode) -> None:
        self._profiler = profiler
        self._node = node

    def record(self, seconds: float = 0.0, rows_in: int = 0,
               rows_out: int = 0, calls: int = 1) -> None:
        with self._profiler._lock:
            self._node.add(calls=calls, seconds=seconds,
                           rows_in=rows_in, rows_out=rows_out)


class _NodeHandle:
    """Context manager for structural nodes (pushed on the stack)."""

    __slots__ = ("_profiler", "_op", "_attrs", "_node", "_start",
                 "_rows_in", "_rows_out")

    def __init__(self, profiler: "PlanProfiler", op: str,
                 attrs: dict) -> None:
        self._profiler = profiler
        self._op = op
        self._attrs = attrs
        self._node: PlanNode | None = None
        self._start = 0.0
        self._rows_in = 0
        self._rows_out = 0

    def add(self, rows_in: int = 0, rows_out: int = 0) -> "_NodeHandle":
        self._rows_in += rows_in
        self._rows_out += rows_out
        return self

    def __enter__(self) -> "_NodeHandle":
        profiler = self._profiler
        parent = profiler._current_parent()
        with profiler._lock:
            self._node = parent.child(self._op, self._attrs)
        profiler._stack().append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        profiler = self._profiler
        stack = profiler._stack()
        if stack and stack[-1] is self._node:
            stack.pop()
        with profiler._lock:
            self._node.add(calls=1, seconds=elapsed,
                           rows_in=self._rows_in,
                           rows_out=self._rows_out)
        return False


class _TreeHandle:
    """Context manager that makes one tree current for a block."""

    __slots__ = ("_profiler", "_attrs", "_tree", "_prev_stack", "_start",
                 "_rows_out")

    def __init__(self, profiler: "PlanProfiler", attrs: dict) -> None:
        self._profiler = profiler
        self._attrs = attrs
        self._tree: PlanTree | None = None
        self._prev_stack: list | None = None
        self._start = 0.0
        self._rows_out = 0

    def add(self, rows_in: int = 0, rows_out: int = 0) -> "_TreeHandle":
        self._rows_out += rows_out
        return self

    def __enter__(self) -> "_TreeHandle":
        profiler = self._profiler
        merged = dict(profiler._ambient())
        merged.update(self._attrs)
        self._tree = profiler._tree_for(merged)
        local = profiler._local
        self._prev_stack = getattr(local, "stack", None)
        local.stack = [self._tree.root]
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        profiler = self._profiler
        with profiler._lock:
            self._tree.root.add(calls=1, seconds=elapsed,
                                rows_out=self._rows_out)
        profiler._local.stack = self._prev_stack
        return False


class _ScopeHandle:
    """Context manager pushing ambient attrs (e.g. the driver's scale)."""

    __slots__ = ("_profiler", "_attrs")

    def __init__(self, profiler: "PlanProfiler", attrs: dict) -> None:
        self._profiler = profiler
        self._attrs = attrs

    def __enter__(self) -> "_ScopeHandle":
        self._profiler._scopes().append(self._attrs)
        return self

    def __exit__(self, *exc) -> bool:
        scopes = self._profiler._scopes()
        if scopes and scopes[-1] is self._attrs:
            scopes.pop()
        return False


class PlanProfiler:
    """Collects merged plan trees across an observation session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._trees: dict[tuple, PlanTree] = {}
        self._local = threading.local()

    # -- thread state --------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _scopes(self) -> list:
        scopes = getattr(self._local, "scopes", None)
        if scopes is None:
            scopes = self._local.scopes = []
        return scopes

    def _ambient(self) -> dict:
        merged: dict = {}
        for scope in self._scopes():
            merged.update(scope)
        return merged

    def _tree_for(self, attrs: dict) -> PlanTree:
        key = _attr_key(attrs)
        with self._lock:
            tree = self._trees.get(key)
            if tree is None:
                tree = self._trees[key] = PlanTree(attrs)
        return tree

    def _current_parent(self) -> PlanNode:
        """The open node nodes attach to; an implicit ambient tree when
        nothing opened one (keeps stray nodes from being lost)."""
        stack = self._stack()
        if not stack:
            stack.append(self._tree_for(self._ambient()).root)
        return stack[-1]

    # -- recording API -------------------------------------------------------

    def tree(self, **attrs) -> _TreeHandle:
        """Make the tree for ``attrs`` (plus ambient scope) current."""
        return _TreeHandle(self, attrs)

    def scope(self, **attrs) -> _ScopeHandle:
        """Ambient attrs merged into every tree opened in the block."""
        return _ScopeHandle(self, attrs)

    def node(self, op: str, **attrs) -> _NodeHandle:
        """A structural operator node; use as a context manager."""
        return _NodeHandle(self, op, attrs)

    def open(self, op: str, **attrs) -> _OpStats:
        """Bind an iterator operator's merged node at call time; the
        operator reports once via :meth:`_OpStats.record`."""
        parent = self._current_parent()
        with self._lock:
            node = parent.child(op, attrs)
        return _OpStats(self, node)

    def leaf(self, op: str, seconds: float = 0.0, rows_in: int = 0,
             rows_out: int = 0, **attrs) -> None:
        """One-shot record of a leaf operator under the current node."""
        parent = self._current_parent()
        with self._lock:
            parent.child(op, attrs).add(calls=1, seconds=seconds,
                                        rows_in=rows_in,
                                        rows_out=rows_out)

    # -- queries -------------------------------------------------------------

    def trees(self) -> list[PlanTree]:
        """Every recorded tree, in first-opened order."""
        with self._lock:
            return list(self._trees.values())

    def find_trees(self, **attrs) -> list[PlanTree]:
        """Trees whose attrs contain every given (key, value) pair."""
        wanted = {name: str(value) for name, value in attrs.items()}
        return [tree for tree in self.trees()
                if all(str(tree.attrs.get(name)) == value
                       for name, value in wanted.items())]

    def tree_records(self) -> list[dict]:
        """All trees as JSON-ready dicts (the artifact ``plans`` list)."""
        return [tree.to_record() for tree in self.trees()]

    def total_nodes(self) -> int:
        return sum(tree.root.total_nodes() - 1 for tree in self.trees())

    def __len__(self) -> int:
        return len(self._trees)


# -- rendering ---------------------------------------------------------------

def _format_stats(node: PlanNode) -> str:
    parts = [f"calls={node.calls}"]
    if node.rows_in:
        parts.append(f"rows_in={node.rows_in}")
    parts.append(f"rows_out={node.rows_out}")
    parts.append(f"time={node.seconds * 1000:.3f}ms")
    return "  (" + " ".join(parts) + ")"


def _format_op(node: PlanNode) -> str:
    label = node.op
    if node.attrs:
        label += " " + " ".join(f"{name}={value}" for name, value
                                in sorted(node.attrs.items()))
    return label


def render_plan(tree: PlanTree, title: str | None = None) -> str:
    """One tree as an annotated ASCII plan (EXPLAIN ANALYZE style)."""
    if title is None:
        title = " ".join(f"{name}={value}" for name, value
                         in sorted(tree.attrs.items())) or "(untracked)"
    lines = [f"plan {title}{_format_stats(tree.root)}"]

    def visit(node: PlanNode, prefix: str, last: bool) -> None:
        branch = "`- " if last else "|- "
        lines.append(prefix + branch + _format_op(node)
                     + _format_stats(node))
        child_prefix = prefix + ("   " if last else "|  ")
        for index, child in enumerate(node.children):
            visit(child, child_prefix, index == len(node.children) - 1)

    for index, child in enumerate(tree.root.children):
        visit(child, "", index == len(tree.root.children) - 1)
    if not tree.root.children:
        lines.append("`- (no operator nodes recorded)")
    return "\n".join(lines)


def plan_cell_summary(tree_record: dict) -> dict:
    """Compact per-cell summary of one tree record (for BENCH cells):
    node count plus per-operator aggregate rows/calls/time."""
    totals: dict[str, dict] = {}
    nodes = 0

    def visit(record: dict) -> None:
        nonlocal nodes
        nodes += 1
        entry = totals.setdefault(record["op"], {
            "calls": 0, "rows_in": 0, "rows_out": 0, "ms": 0.0})
        entry["calls"] += record.get("calls", 0)
        entry["rows_in"] += record.get("rows_in", 0)
        entry["rows_out"] += record.get("rows_out", 0)
        entry["ms"] += record.get("seconds", 0.0) * 1000.0
        for child in record.get("children", ()):
            visit(child)

    for child in tree_record["root"].get("children", ()):
        visit(child)
    operators = [{"op": op, **{k: (round(v, 4) if k == "ms" else v)
                               for k, v in entry.items()}}
                 for op, entry in totals.items()]
    operators.sort(key=lambda entry: -entry["ms"])
    return {"nodes": nodes, "operators": operators}
