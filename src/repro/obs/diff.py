"""Cross-run regression diffing of ``BENCH_<name>.json`` artifacts.

``repro obs diff A.json B.json`` pairs cells across two artifacts by
``(table, system, class, scale)`` and reports, per cell, the cold-time
delta, the warm-median delta and every counter that drifted.  A cell
whose cold time regressed beyond a configurable threshold (and whose
times are above a noise floor) fails the comparison — the exit status is
what CI gates on, so the ``BENCH_*`` trajectory accumulates instead of
being upload-and-forget.

Both ``xbench-obs/1`` (PR 1) and ``xbench-obs/2`` artifacts are
accepted: the v2 additions (per-cell ``plan`` summaries, top-level
``plans``) are purely additive.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field

from ..errors import ReproError

#: Accepted artifact schema lineage.
SCHEMA_PREFIX = "xbench-obs/"

#: Default regression threshold: fail past +25% cold time.
DEFAULT_THRESHOLD = 0.25

#: Default noise floor: cells where both runs are faster than this many
#: seconds are too jittery to gate on (they still appear in the report).
DEFAULT_MIN_SECONDS = 0.001


class ArtifactError(ReproError):
    """An artifact is missing, unparsable, or not a BENCH document."""


def load_artifact(path: str | pathlib.Path) -> dict:
    """Read and validate one ``BENCH_*.json`` artifact."""
    target = pathlib.Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {target}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(
            f"artifact {target} is not valid JSON ({exc}); was the "
            "writing run interrupted?") from exc
    schema = document.get("schema", "")
    if not isinstance(schema, str) or \
            not schema.startswith(SCHEMA_PREFIX):
        raise ArtifactError(
            f"artifact {target} has schema {schema!r}, expected "
            f"{SCHEMA_PREFIX}*")
    return document


#: ``<system> xN`` — the row label the sharded execution service gives
#: its cells (e.g. ``X-Hive x2``).
_SHARD_SUFFIX = re.compile(r" x\d+$")


def _cells_by_key(artifact: dict,
                  normalize_shards: bool = False) -> dict[tuple, dict]:
    cells = {}
    for cell in artifact.get("cells", ()):
        system = cell.get("system")
        if normalize_shards and system is not None:
            system = _SHARD_SUFFIX.sub("", system)
        key = (cell.get("table"), system,
               cell.get("class"), cell.get("scale"))
        cells[key] = cell
    return cells


@dataclass
class CellDiff:
    """One paired cell's comparison."""

    table: str
    system: str
    class_key: str
    scale: str
    a_seconds: float | None = None
    b_seconds: float | None = None
    a_warm_median: float | None = None
    b_warm_median: float | None = None
    counter_drift: dict = field(default_factory=dict)
    status: str = "ok"        # ok | regression | improved | added | removed

    @property
    def key(self) -> tuple:
        return (self.table, self.system, self.class_key, self.scale)

    @property
    def delta_pct(self) -> float | None:
        """Cold-time change in percent (positive = slower in B)."""
        if not self.a_seconds or self.b_seconds is None:
            return None
        return (self.b_seconds - self.a_seconds) / self.a_seconds * 100.0

    def to_record(self) -> dict:
        record = {
            "table": self.table, "system": self.system,
            "class": self.class_key, "scale": self.scale,
            "a_seconds": self.a_seconds, "b_seconds": self.b_seconds,
            "delta_pct": self.delta_pct, "status": self.status,
        }
        if self.a_warm_median is not None or \
                self.b_warm_median is not None:
            record["a_warm_median"] = self.a_warm_median
            record["b_warm_median"] = self.b_warm_median
        if self.counter_drift:
            record["counter_drift"] = dict(self.counter_drift)
        return record


@dataclass
class DiffReport:
    """Everything one artifact comparison produced."""

    a_name: str
    b_name: str
    threshold: float
    min_seconds: float
    cells: list = field(default_factory=list)
    aggregate_counter_drift: dict = field(default_factory=dict)

    def regressions(self) -> list[CellDiff]:
        return [cell for cell in self.cells
                if cell.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_record(self) -> dict:
        return {
            "a": self.a_name, "b": self.b_name,
            "threshold": self.threshold,
            "min_seconds": self.min_seconds,
            "compared": len(self.cells),
            "regressions": len(self.regressions()),
            "ok": self.ok,
            "cells": [cell.to_record() for cell in self.cells],
            "aggregate_counter_drift": dict(
                self.aggregate_counter_drift),
        }

    # -- rendering -----------------------------------------------------------

    def format_text(self, verbose: bool = False) -> str:
        lines = [f"obs diff: {self.a_name} -> {self.b_name} "
                 f"(threshold +{self.threshold * 100:.0f}%, floor "
                 f"{self.min_seconds * 1000:.1f} ms)"]
        flagged = [cell for cell in self.cells
                   if cell.status != "ok" or verbose]
        for cell in flagged:
            label = (f"{cell.table}/{cell.system}/"
                     f"{cell.class_key}/{cell.scale}")
            if cell.status == "added":
                lines.append(f"  + {label}: new cell "
                             f"({_ms(cell.b_seconds)})")
                continue
            if cell.status == "removed":
                lines.append(f"  - {label}: cell disappeared "
                             f"(was {_ms(cell.a_seconds)})")
                continue
            marker = {"regression": "!", "improved": "<"}.get(
                cell.status, " ")
            delta = cell.delta_pct
            delta_text = (f"{delta:+.1f}%" if delta is not None
                          else "n/a")
            line = (f"  {marker} {label}: {_ms(cell.a_seconds)} -> "
                    f"{_ms(cell.b_seconds)} ({delta_text})")
            if cell.counter_drift:
                drift = ", ".join(
                    f"{name} {pair[0]}->{pair[1]}"
                    for name, pair in sorted(
                        cell.counter_drift.items()))
                line += f"  counters: {drift}"
            lines.append(line)
        if not flagged:
            lines.append("  (no per-cell changes to report)")
        lines.append(
            f"{len(self.cells)} cell(s) compared, "
            f"{len(self.regressions())} regression(s)"
            + ("" if self.ok else " — FAIL"))
        return "\n".join(lines)


def _ms(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.2f} ms"


def _warm_median(cell: dict) -> float | None:
    warm = cell.get("warm")
    if not warm:
        return None
    return warm.get("median_seconds")


def _counter_drift(a_cell: dict, b_cell: dict) -> dict:
    a_counters = a_cell.get("counters") or {}
    b_counters = b_cell.get("counters") or {}
    drift = {}
    for name in sorted(set(a_counters) | set(b_counters)):
        a_value = a_counters.get(name, 0)
        b_value = b_counters.get(name, 0)
        if a_value != b_value:
            drift[name] = (a_value, b_value)
    return drift


def diff_artifacts(a: dict, b: dict,
                   threshold: float = DEFAULT_THRESHOLD,
                   min_seconds: float = DEFAULT_MIN_SECONDS,
                   normalize_shards: bool = False) -> DiffReport:
    """Compare two loaded artifacts; see the module docstring.

    ``normalize_shards`` folds the sharded service's ``<system> xN``
    row labels onto ``<system>``, pairing a shards-on run's cells with
    a shards-off baseline (the CI shard A/B gate).
    """
    report = DiffReport(a_name=a.get("name", "A"),
                        b_name=b.get("name", "B"),
                        threshold=threshold, min_seconds=min_seconds)
    a_cells = _cells_by_key(a, normalize_shards=normalize_shards)
    b_cells = _cells_by_key(b, normalize_shards=normalize_shards)
    for key in sorted(set(a_cells) | set(b_cells),
                      key=lambda item: tuple(str(part)
                                             for part in item)):
        table, system, class_key, scale = key
        diff = CellDiff(table=table, system=system,
                        class_key=class_key, scale=scale)
        a_cell = a_cells.get(key)
        b_cell = b_cells.get(key)
        if a_cell is None:
            diff.b_seconds = b_cell.get("seconds")
            diff.status = "added"
            report.cells.append(diff)
            continue
        if b_cell is None:
            diff.a_seconds = a_cell.get("seconds")
            diff.status = "removed"
            report.cells.append(diff)
            continue
        diff.a_seconds = a_cell.get("seconds")
        diff.b_seconds = b_cell.get("seconds")
        diff.a_warm_median = _warm_median(a_cell)
        diff.b_warm_median = _warm_median(b_cell)
        diff.counter_drift = _counter_drift(a_cell, b_cell)
        if diff.a_seconds and diff.b_seconds is not None:
            above_floor = (diff.a_seconds >= min_seconds
                           or diff.b_seconds >= min_seconds)
            ratio = diff.b_seconds / diff.a_seconds
            if above_floor and ratio > 1.0 + threshold:
                diff.status = "regression"
            elif above_floor and ratio < 1.0 / (1.0 + threshold):
                diff.status = "improved"
        report.cells.append(diff)

    # Aggregate counter totals: informational drift, never gating.
    a_totals = a.get("counters") or {}
    b_totals = b.get("counters") or {}
    for name in sorted(set(a_totals) | set(b_totals)):
        a_value = a_totals.get(name, 0)
        b_value = b_totals.get(name, 0)
        if a_value != b_value:
            report.aggregate_counter_drift[name] = (a_value, b_value)
    return report


def diff_paths(a_path: str | pathlib.Path, b_path: str | pathlib.Path,
               threshold: float = DEFAULT_THRESHOLD,
               min_seconds: float = DEFAULT_MIN_SECONDS,
               normalize_shards: bool = False) -> DiffReport:
    """Load two artifacts from disk and compare them."""
    return diff_artifacts(load_artifact(a_path), load_artifact(b_path),
                          threshold=threshold, min_seconds=min_seconds,
                          normalize_shards=normalize_shards)
