"""Low-overhead CPU/RSS sampling with pilot-run calibration.

BENCH artifacts should carry memory and CPU alongside wall time, but a
sampler that burns measurable CPU poisons the very numbers it reports.
So :class:`ResourceSampler` runs a two-stage model: a short pilot
measures what one sample actually costs on this machine, then the full
run samples at an interval chosen so sampling stays under a target
overhead fraction (default 2%), clamped to a sane range.

Samples come from ``/proc/<pid>/stat`` (utime+stime) and
``/proc/<pid>/statm`` (resident pages) so one sampler can watch a whole
process tree — the server plus every fork worker — without cooperation
from the sampled processes.  Where ``/proc`` is unavailable the sampler
degrades to :func:`resource.getrusage` for the calling process only and
says so in its summary.
"""

from __future__ import annotations

import os
import threading
import time

#: Hard bounds on the calibrated interval: never busier than 20 Hz,
#: never lazier than one sample every 2 s (a 5 s run should still catch
#: a couple of samples).
MIN_INTERVAL = 0.05
MAX_INTERVAL = 2.0

_CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100
_PAGE_KB = (os.sysconf("SC_PAGE_SIZE") // 1024
            if hasattr(os, "sysconf") else 4)


def _read_proc(pid: int) -> tuple[float, int] | None:
    """(cpu_seconds, rss_kb) for one pid from /proc, or None."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        with open(f"/proc/{pid}/statm", "rb") as handle:
            statm = handle.read().split()
    except OSError:
        return None
    # The comm field may contain spaces/parens; parse after the last ')'.
    fields = stat[stat.rfind(")") + 2:].split()
    utime, stime = int(fields[11]), int(fields[12])
    rss_pages = int(statm[1])
    return (utime + stime) / _CLK_TCK, rss_pages * _PAGE_KB


class ResourceSampler:
    """Background CPU/RSS sampler over a dynamic set of pids.

    ``pids`` is a callable returning the pids to watch on each tick, so
    the set can follow engine-cache churn (workers spawning, dying,
    respawning) without re-plumbing the sampler.
    """

    def __init__(self, pids, overhead_budget: float = 0.02,
                 interval: float | None = None) -> None:
        self._pids = pids if callable(pids) else (lambda: list(pids))
        self.overhead_budget = overhead_budget
        self.interval = interval  # None until calibrate() (or explicit)
        self.mode = "proc" if os.path.isdir("/proc/self") else "rusage"
        self.samples = 0
        self.sample_cost = 0.0
        self._per_pid: dict[int, dict] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ------------------------------------------------------------

    def _sample_once(self) -> None:
        if self.mode == "rusage":
            import resource
            usage = resource.getrusage(resource.RUSAGE_SELF)
            cpu = usage.ru_utime + usage.ru_stime
            with self._lock:
                cell = self._per_pid.setdefault(os.getpid(), {
                    "cpu_seconds": 0.0, "rss_max_kb": 0, "samples": 0})
                cell["cpu_seconds"] = cpu
                cell["rss_max_kb"] = max(cell["rss_max_kb"],
                                         usage.ru_maxrss)
                cell["samples"] += 1
                self.samples += 1
            return
        for pid in self._pids():
            reading = _read_proc(pid)
            if reading is None:
                continue
            cpu, rss_kb = reading
            with self._lock:
                cell = self._per_pid.setdefault(pid, {
                    "cpu_seconds": 0.0, "rss_max_kb": 0, "samples": 0})
                cell["cpu_seconds"] = cpu
                cell["rss_max_kb"] = max(cell["rss_max_kb"], rss_kb)
                cell["samples"] += 1
        with self._lock:
            self.samples += 1

    def calibrate(self, pilot: int = 5) -> float:
        """Pilot-run ``pilot`` samples, time them, and set the interval
        so sampling costs at most ``overhead_budget`` of wall time."""
        start = time.perf_counter()
        for _ in range(max(1, pilot)):
            self._sample_once()
        cost = (time.perf_counter() - start) / max(1, pilot)
        self.sample_cost = cost
        self.interval = min(MAX_INTERVAL, max(
            MIN_INTERVAL, cost / max(self.overhead_budget, 1e-6)))
        return self.interval

    # -- background thread ---------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start sampling in a daemon thread (calibrating first if no
        interval was set)."""
        if self.interval is None:
            self.calibrate()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="resource-sampler", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """The artifact-ready snapshot: totals plus per-pid readings."""
        with self._lock:
            per_pid = {str(pid): dict(cell)
                       for pid, cell in sorted(self._per_pid.items())}
        return {
            "mode": self.mode,
            "interval_seconds": self.interval,
            "sample_cost_seconds": self.sample_cost,
            "samples": self.samples,
            "cpu_seconds_total": round(sum(
                cell["cpu_seconds"] for cell in per_pid.values()), 4),
            "rss_max_kb_total": sum(
                cell["rss_max_kb"] for cell in per_pid.values()),
            "pids": per_pid,
        }
