"""Counters and gauges.

A :class:`CounterSet` is a thread-safe name -> integer map.  The hot
layers never touch it directly; they call the hook functions in
:mod:`repro.obs.recorder`, which are no-ops until a recorder is
installed.  ``snapshot``/``delta`` support per-query attribution: the
driver snapshots before a timed execution and stores the difference in
the result cell.
"""

from __future__ import annotations

import threading


class CounterSet:
    """Monotonic named counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counters that moved since ``before`` (a snapshot)."""
        current = self.snapshot()
        changed = {}
        for name, value in current.items():
            difference = value - before.get(name, 0)
            if difference:
                changed[name] = difference
        return changed

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)


class GaugeSet:
    """Last-value-wins named gauges (corpus sizes, row totals, ...)."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    def set(self, name: str, value: float) -> None:
        with self._lock:
            self._values[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)
