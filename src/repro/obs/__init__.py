"""repro.obs — the observability subsystem.

Four pieces, one import surface:

* :mod:`~repro.obs.tracer` — hierarchical wall-clock spans with a
  thread-local span stack (multiuser streams trace independently);
* :mod:`~repro.obs.metrics` — named counters and gauges;
* :mod:`~repro.obs.histogram` — latency histograms with P50/P95/P99;
* :mod:`~repro.obs.export` / :mod:`~repro.obs.profile` — NDJSON span
  logs, ``BENCH_<name>.json`` artifacts and the text profile report.

Instrumented layers call the hook functions (``span``, ``count``,
``gauge``, ``record_latency``) from :mod:`~repro.obs.recorder`; all of
them are no-ops until a :class:`Recorder` is installed, so the default
benchmark path is observation-free.
"""

from .export import (
    PHASE_SPANS,
    SCHEMA,
    bench_summary,
    read_ndjson,
    span_record,
    suite_cells,
    write_bench_artifact,
    write_ndjson,
)
from .histogram import LatencyHistogram
from .metrics import CounterSet, GaugeSet
from .profile import format_profile
from .recorder import (
    Recorder,
    active,
    count,
    counters_delta,
    counters_snapshot,
    gauge,
    install,
    observing,
    record_latency,
    span,
    uninstall,
)
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "PHASE_SPANS",
    "SCHEMA",
    "bench_summary",
    "read_ndjson",
    "span_record",
    "suite_cells",
    "write_bench_artifact",
    "write_ndjson",
    "LatencyHistogram",
    "CounterSet",
    "GaugeSet",
    "format_profile",
    "Recorder",
    "active",
    "count",
    "counters_delta",
    "counters_snapshot",
    "gauge",
    "install",
    "observing",
    "record_latency",
    "span",
    "uninstall",
    "NULL_SPAN",
    "Span",
    "Tracer",
]
