"""repro.obs — the observability subsystem.

Four pieces, one import surface:

* :mod:`~repro.obs.tracer` — hierarchical wall-clock spans with a
  thread-local span stack (multiuser streams trace independently);
* :mod:`~repro.obs.metrics` — named counters and gauges;
* :mod:`~repro.obs.histogram` — latency histograms with P50/P95/P99;
* :mod:`~repro.obs.plan` — EXPLAIN ANALYZE plan trees (per-operator
  wall-time and rows-in/rows-out cardinalities);
* :mod:`~repro.obs.export` / :mod:`~repro.obs.profile` — NDJSON span
  logs, ``BENCH_<name>.json`` artifacts and the text profile report;
* :mod:`~repro.obs.diff` — cross-run artifact comparison with a
  regression gate (``repro obs diff``);
* :mod:`~repro.obs.trace` — cross-process trace context riding the
  serving protocol and shard RPC, plus offline span-tree reassembly
  and time attribution (``repro trace``);
* :mod:`~repro.obs.resources` — pilot-calibrated CPU/RSS sampling over
  the server and its fork workers.

Instrumented layers call the hook functions (``span``, ``count``,
``gauge``, ``record_latency``) from :mod:`~repro.obs.recorder`; all of
them are no-ops until a :class:`Recorder` is installed, so the default
benchmark path is observation-free.
"""

from .diff import (
    ArtifactError,
    CellDiff,
    DiffReport,
    diff_artifacts,
    diff_paths,
    load_artifact,
)
from .export import (
    PHASE_SPANS,
    SCHEMA,
    bench_summary,
    read_ndjson,
    span_record,
    suite_cells,
    trace_records,
    write_bench_artifact,
    write_ndjson,
)
from .histogram import LatencyHistogram
from .metrics import CounterSet, GaugeSet
from .plan import (
    NULL_PLAN_NODE,
    PlanNode,
    PlanProfiler,
    PlanTree,
    plan_cell_summary,
    render_plan,
)
from .profile import format_profile
from .recorder import (
    Recorder,
    active,
    adopt_spans,
    annotate,
    count,
    counters_delta,
    counters_snapshot,
    gauge,
    install,
    observing,
    plan,
    plan_node,
    plan_scope,
    plan_tree,
    record_latency,
    span,
    uninstall,
)
from .resources import ResourceSampler
from .trace import TraceContext, current_trace_id, new_trace_id, trace_scope
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "PHASE_SPANS",
    "SCHEMA",
    "ArtifactError",
    "CellDiff",
    "DiffReport",
    "diff_artifacts",
    "diff_paths",
    "load_artifact",
    "bench_summary",
    "read_ndjson",
    "span_record",
    "suite_cells",
    "trace_records",
    "write_bench_artifact",
    "write_ndjson",
    "LatencyHistogram",
    "CounterSet",
    "GaugeSet",
    "NULL_PLAN_NODE",
    "PlanNode",
    "PlanProfiler",
    "PlanTree",
    "plan_cell_summary",
    "render_plan",
    "format_profile",
    "Recorder",
    "active",
    "adopt_spans",
    "annotate",
    "count",
    "counters_delta",
    "counters_snapshot",
    "gauge",
    "install",
    "observing",
    "plan",
    "plan_node",
    "plan_scope",
    "plan_tree",
    "record_latency",
    "span",
    "uninstall",
    "ResourceSampler",
    "TraceContext",
    "current_trace_id",
    "new_trace_id",
    "trace_scope",
    "NULL_SPAN",
    "Span",
    "Tracer",
]
