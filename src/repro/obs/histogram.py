"""Latency histograms with percentile statistics.

Benchmark runs are small (hundreds to thousands of samples), so the
histogram keeps the raw samples and computes exact percentiles by
linear interpolation over the sorted data — the same definition as
``numpy.percentile(..., method="linear")``.  Samples are stored in
seconds; the ``summary`` view scales to milliseconds, the unit the
paper's query tables use.
"""

from __future__ import annotations

import math
from typing import Iterable


class LatencyHistogram:
    """Raw-sample reservoir with P50/P95/P99/max statistics."""

    def __init__(self, samples: Iterable[float] | None = None) -> None:
        self.samples: list[float] = list(samples or [])

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    def extend(self, seconds: Iterable[float]) -> None:
        self.samples.extend(seconds)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's samples into this one."""
        self.samples.extend(other.samples)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]
               ) -> "LatencyHistogram":
        out = cls()
        for histogram in histograms:
            out.samples.extend(histogram.samples)
        return out

    # -- statistics ----------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples, default=0.0)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100), linear interpolation."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * (p / 100.0)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] + fraction * (ordered[high] - ordered[low])

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict:
        """Percentile summary in milliseconds (artifact schema)."""
        scale = 1000.0
        return {
            "count": self.count,
            "mean_ms": self.mean * scale,
            "p50_ms": self.p50 * scale,
            "p95_ms": self.p95 * scale,
            "p99_ms": self.p99 * scale,
            "max_ms": self.max * scale,
        }

    def format_ms(self) -> str:
        """The one-line percentile report every summary shares:
        ``p50 … ms, p95 … ms, p99 … ms, max … ms``."""
        return (f"p50 {self.p50 * 1000:.2f} ms, "
                f"p95 {self.p95 * 1000:.2f} ms, "
                f"p99 {self.p99 * 1000:.2f} ms, "
                f"max {self.max * 1000:.2f} ms")

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LatencyHistogram n={self.count} "
                f"p50={self.p50 * 1000:.2f}ms>")
