"""Hierarchical tracing spans.

A :class:`Tracer` records wall-clock spans ("parse", "xquery.eval", ...)
as a tree: each thread keeps its own stack of open spans, so concurrent
multiuser streams trace independently without interleaving each other's
parent/child links.  Finished spans land in one flat, lock-protected
list in completion order; the tree structure survives in ``parent_id``.

The module is written for near-zero disabled cost: callers go through
:func:`repro.obs.recorder.span`, which returns the shared
:data:`NULL_SPAN` singleton when no recorder is installed — one global
read and a ``None`` check, no allocation.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from . import trace as _trace


@dataclass
class Span:
    """One finished (or open) span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    thread: str = ""
    #: cross-process identity: the trace this span belongs to, and —
    #: when the span has no *local* parent — the gid of its remote
    #: parent in another process.  Stamped from the ambient
    #: :mod:`repro.obs.trace` context; both None for untraced spans.
    trace_id: str | None = None
    remote_parent: str | None = None

    @property
    def seconds(self) -> float:
        """Duration (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: Shared no-op span — identity-comparable so tests can assert the
#: disabled path short-circuits.
NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = tracer._new_span(name, attrs)

    @property
    def span(self) -> Span:
        """The underlying (possibly still open) span record."""
        return self._span

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes to the open span."""
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._tracer._push(self._span)
        return self

    def __exit__(self, *exc) -> bool:
        self._span.end = time.perf_counter()
        self._tracer._pop()
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Thread-safe span recorder with per-thread span stacks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a span; use as a context manager."""
        return _LiveSpan(self, name, attrs)

    def _new_span(self, name: str, attrs: dict,
                  trace_id: str | None = None,
                  parent_gid: str | None = None) -> Span:
        """Allocate a span, linked to the calling thread's innermost
        open span, or — when there is none — to the ambient trace
        context's remote parent in another process."""
        parent = self.current_span()
        ctx = _trace.current()
        if trace_id is None and ctx is not None:
            trace_id = ctx.trace_id
        remote = None
        if parent is None:
            remote = parent_gid if parent_gid is not None else (
                ctx.parent_gid if ctx is not None else None)
        return Span(span_id=next(self._ids),
                    parent_id=parent.span_id if parent else None,
                    name=name,
                    start=time.perf_counter(),
                    attrs=attrs,
                    thread=threading.current_thread().name,
                    trace_id=trace_id,
                    remote_parent=remote)

    # -- manual span API -----------------------------------------------------
    #
    # Context-manager spans assume one call stack per thread; code that
    # interleaves many requests on one thread (the server's asyncio
    # loop) instead opens and closes spans by handle, never touching the
    # thread-local stack.

    def start_span(self, name: str, *, trace_id: str | None = None,
                   parent_gid: str | None = None, **attrs) -> Span:
        """Open a span detached from the thread stack; close it with
        :meth:`end_span`.  Children parent under it via ``parent_gid``
        (cross-process) or an explicit trace scope."""
        return self._new_span(name, attrs, trace_id=trace_id,
                              parent_gid=parent_gid)

    def end_span(self, span: Span) -> None:
        """Close and record a span from :meth:`start_span`."""
        span.end = time.perf_counter()
        self._finish(span)

    def record_span(self, name: str, start: float, end: float, *,
                    parent_id: int | None = None,
                    parent_gid: str | None = None,
                    trace_id: str | None = None, **attrs) -> Span:
        """Record an already-elapsed interval as a finished span (used
        for phases measured before their span exists, e.g. admission
        wait, which is only known once the request leaves the queue)."""
        span = Span(span_id=next(self._ids),
                    parent_id=parent_id,
                    name=name,
                    start=start,
                    end=end,
                    attrs=attrs,
                    thread=threading.current_thread().name,
                    trace_id=trace_id,
                    remote_parent=parent_gid if parent_id is None else None)
        self._finish(span)
        return span

    # -- per-thread stack ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def current_span(self) -> Span | None:
        """The calling thread's innermost open context-manager span."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # -- queries ------------------------------------------------------------

    def named(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Finished direct children of ``span``."""
        return [child for child in self.spans
                if child.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)
