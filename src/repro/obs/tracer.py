"""Hierarchical tracing spans.

A :class:`Tracer` records wall-clock spans ("parse", "xquery.eval", ...)
as a tree: each thread keeps its own stack of open spans, so concurrent
multiuser streams trace independently without interleaving each other's
parent/child links.  Finished spans land in one flat, lock-protected
list in completion order; the tree structure survives in ``parent_id``.

The module is written for near-zero disabled cost: callers go through
:func:`repro.obs.recorder.span`, which returns the shared
:data:`NULL_SPAN` singleton when no recorder is installed — one global
read and a ``None`` check, no allocation.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or open) span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    thread: str = ""

    @property
    def seconds(self) -> float:
        """Duration (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: Shared no-op span — identity-comparable so tests can assert the
#: disabled path short-circuits.
NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(span_id=next(tracer._ids),
                          parent_id=tracer._current_id(),
                          name=name,
                          start=time.perf_counter(),
                          attrs=attrs,
                          thread=threading.current_thread().name)

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes to the open span."""
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._tracer._push(self._span.span_id)
        return self

    def __exit__(self, *exc) -> bool:
        self._span.end = time.perf_counter()
        self._tracer._pop()
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Thread-safe span recorder with per-thread span stacks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a span; use as a context manager."""
        return _LiveSpan(self, name, attrs)

    # -- per-thread stack ----------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _current_id(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # -- queries ------------------------------------------------------------

    def named(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Finished direct children of ``span``."""
        return [child for child in self.spans
                if child.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)
