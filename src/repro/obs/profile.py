"""Text profile report renderer (in the style of ``core/report.py``).

Turns one :class:`~repro.obs.recorder.Recorder` into the human-readable
companion of the ``BENCH_<name>.json`` artifact: per-phase timings
aggregated from the spans, counter totals, gauges and latency
percentiles, each as a right-justified ASCII table.
"""

from __future__ import annotations

from .export import PHASE_SPANS
from .recorder import Recorder


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(row[index]) for row in [headers] + rows)
              for index in range(len(headers))]

    def format_row(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells.extend(value.rjust(width)
                     for value, width in zip(row[1:], widths[1:]))
        return "  ".join(cells).rstrip()

    lines = [format_row(headers),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)


def _phase_table(recorder: Recorder) -> str:
    # Aggregate spans by (phase, engine, class, scale, qid): the driver
    # emits one span per phase per engine per scenario, but repeated
    # queries produce several, hence the calls column.
    totals: dict[tuple, list[float]] = {}
    for span in recorder.tracer.spans:
        if span.name not in PHASE_SPANS:
            continue
        key = (span.name,
               str(span.attrs.get("engine", "")),
               str(span.attrs.get("class", "")),
               str(span.attrs.get("scale", "")),
               str(span.attrs.get("qid", "")))
        totals.setdefault(key, []).append(span.seconds)

    order = {name: index for index, name in enumerate(PHASE_SPANS)}
    rows = []
    for key in sorted(totals, key=lambda k: (k[2], k[3], k[1],
                                             order.get(k[0], 99), k[4])):
        samples = totals[key]
        phase, engine, class_key, scale, qid = key
        rows.append([f"{class_key}/{scale}" if class_key else "-",
                     engine or "-", phase, qid or "-",
                     str(len(samples)),
                     f"{sum(samples):.4f}"])
    if not rows:
        return "Phase timings: no phase spans recorded"
    return ("Phase timings (in Seconds)\n"
            + _format_table(["scenario", "engine", "phase", "qid",
                             "calls", "seconds"], rows))


def _counter_table(recorder: Recorder) -> str:
    counters = recorder.counters.snapshot()
    if not counters:
        return "Counters: none recorded"
    rows = [[name, str(value)]
            for name, value in sorted(counters.items())]
    return "Counters\n" + _format_table(["counter", "value"], rows)


def _gauge_table(recorder: Recorder) -> str:
    gauges = recorder.gauges.snapshot()
    if not gauges:
        return ""
    rows = [[name, f"{value:g}"]
            for name, value in sorted(gauges.items())]
    return "Gauges\n" + _format_table(["gauge", "value"], rows)


def _histogram_table(recorder: Recorder) -> str:
    if not recorder.histograms:
        return "Latency percentiles: no repeated runs recorded"
    rows = []
    for name, histogram in sorted(recorder.histograms.items()):
        summary = histogram.summary()
        rows.append([name, str(summary["count"]),
                     f"{summary['p50_ms']:.2f}",
                     f"{summary['p95_ms']:.2f}",
                     f"{summary['p99_ms']:.2f}",
                     f"{summary['max_ms']:.2f}"])
    return ("Latency percentiles (in Milliseconds)\n"
            + _format_table(["histogram", "count", "p50", "p95", "p99",
                             "max"], rows))


def format_profile(recorder: Recorder, title: str = "") -> str:
    """The full profile report for one recorded session."""
    parts = [f"Profile Report: {title or recorder.name}",
             _phase_table(recorder),
             _counter_table(recorder)]
    gauges = _gauge_table(recorder)
    if gauges:
        parts.append(gauges)
    parts.append(_histogram_table(recorder))
    parts.append(f"{len(recorder.tracer.spans)} span(s) recorded")
    return "\n\n".join(parts)
