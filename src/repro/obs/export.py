"""Machine-readable benchmark artifacts.

Two formats:

* **NDJSON span logs** — one JSON object per finished span, in
  completion order; greppable and streamable.
* **``BENCH_<name>.json``** — one summary document per benchmark run:
  per-cell timings (cold + warm), per-phase spans (generate / load /
  index / query), aggregate counters and gauges, and latency-histogram
  percentiles.  This is the artifact CI uploads so the performance
  trajectory accumulates across PRs.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.engines` (they import the obs hooks); suite results are
flattened by duck typing.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from . import trace as _trace
from .plan import plan_cell_summary
from .recorder import Recorder
from .tracer import Span

#: Artifact schema identifier.  v2 adds plan-profiling data on top of
#: v1, strictly additively: a top-level ``plans`` list (one record per
#: merged plan tree) and an optional per-cell ``plan`` summary.  v1
#: readers that ignore unknown keys keep working; ``repro obs diff``
#: accepts the whole ``xbench-obs/*`` lineage.
SCHEMA = "xbench-obs/2"

#: Span names that constitute the benchmark phases.
PHASE_SPANS = ("generate", "load", "index", "query")


# -- NDJSON span logs --------------------------------------------------------

def span_record(span: Span) -> dict:
    """One span as a flat JSON-ready dict.

    Traced spans also carry their cross-process identity: the globally
    unique ``gid`` (``<process-tag>:<span-id>``), the parent's gid
    (local parent resolved to a gid in this process's namespace, or the
    ``remote_parent`` handed over the wire), the ``trace_id``, and the
    exporting ``process`` tag — everything :func:`repro.obs.trace.assemble`
    needs to relink the tree across processes.
    """
    record = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "seconds": span.seconds,
        "thread": span.thread,
        "attrs": dict(span.attrs),
    }
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
        record["gid"] = _trace.gid_of(span.span_id)
        record["process"] = _trace.process_tag()
        if span.parent_id is not None:
            record["parent_gid"] = _trace.gid_of(span.parent_id)
        else:
            record["parent_gid"] = span.remote_parent
    return record


def trace_records(recorder: Recorder) -> list[dict]:
    """Every traced span record of a session: this process's spans
    (those stamped with a trace id) plus the foreign records adopted
    from shard workers, ordered by start time."""
    records = [span_record(span) for span in recorder.tracer.spans
               if span.trace_id is not None]
    records.extend(recorder.foreign_spans)
    records.sort(key=lambda record: record.get("start", 0.0))
    return records


def _write_text_atomic(target: pathlib.Path, text: str) -> None:
    """Write via a temp file in the target directory + ``os.replace``,
    so a crashed or interrupted run can never leave a truncated file
    for ``obs diff``/CI to choke on."""
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def write_ndjson(spans, path: str | pathlib.Path) -> pathlib.Path:
    """Write spans as NDJSON (one object per line); atomic.

    Accepts :class:`Span` objects or already-exported record dicts
    (foreign spans adopted from other processes arrive as dicts).
    """
    target = pathlib.Path(path)
    _write_text_atomic(target, "".join(
        json.dumps(span if isinstance(span, dict) else span_record(span))
        + "\n" for span in spans))
    return target


def read_ndjson(path: str | pathlib.Path) -> list[dict]:
    """Read an NDJSON span log back into dicts."""
    records = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- BENCH_<name>.json summaries ---------------------------------------------

def suite_cells(suite) -> list[dict]:
    """Flatten a :class:`~repro.core.benchmark.SuiteResult` (duck-typed)
    into one record per cell, including warm-run stats and counters."""
    records: list[dict] = []

    def add(table: str, result) -> None:
        for (row_label, class_key, scale_name), cell in \
                sorted(result.cells.items()):
            record = {
                "table": table,
                "system": row_label,
                "class": class_key,
                "scale": scale_name,
                "seconds": cell.seconds,
                "correct": cell.correct,
                "detail": cell.detail,
            }
            warm = getattr(cell, "warm", None)
            if warm:
                record["warm"] = dict(warm)
            counters = getattr(cell, "counters", None)
            if counters:
                record["counters"] = dict(counters)
            records.append(record)

    add("load", suite.load)
    for qid, result in suite.queries.items():
        add(qid, result)
    return records


def phase_records(recorder: Recorder) -> list[dict]:
    """Per-phase timings extracted from the recorded spans."""
    records = []
    for span in recorder.tracer.spans:
        if span.name in PHASE_SPANS:
            record = {"phase": span.name, "seconds": span.seconds}
            record.update(span.attrs)
            records.append(record)
    return records


def bench_summary(name: str, suite=None, recorder: Recorder | None = None,
                  config: dict | None = None,
                  extra: dict | None = None) -> dict:
    """Build the ``BENCH_<name>.json`` document."""
    summary: dict = {
        "schema": SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "config": dict(config or {}),
    }
    if suite is not None:
        summary["cells"] = suite_cells(suite)
    if recorder is not None:
        summary["phases"] = phase_records(recorder)
        summary["counters"] = recorder.counters.snapshot()
        summary["gauges"] = recorder.gauges.snapshot()
        summary["histograms"] = {
            hist_name: histogram.summary()
            for hist_name, histogram in sorted(recorder.histograms.items())}
        summary["spans_recorded"] = len(recorder.tracer.spans)
        if recorder.plan is not None:
            _embed_plans(summary, recorder.plan.tree_records())
    if extra:
        summary.update(extra)
    return summary


def _embed_plans(summary: dict, plans: list[dict]) -> None:
    """Attach the plan trees (top-level) and per-cell plan summaries.

    Trees are paired with cells by the (qid, system, class, scale)
    attributes the driver stamps on each tree.
    """
    summary["plans"] = plans
    cells = summary.get("cells")
    if not cells:
        return
    by_key = {}
    for plan in plans:
        attrs = plan.get("attrs", {})
        key = (attrs.get("qid"), attrs.get("system"),
               attrs.get("class"), attrs.get("scale"))
        by_key[key] = plan
    for cell in cells:
        plan = by_key.get((cell.get("table"), cell.get("system"),
                           cell.get("class"), cell.get("scale")))
        if plan is not None:
            cell["plan"] = plan_cell_summary(plan)


def write_bench_artifact(summary: dict,
                         directory: str | pathlib.Path = "."
                         ) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``directory``; atomic.

    Returns the path.  An empty (or all-punctuation) name falls back to
    ``"run"`` rather than producing ``BENCH_.json``.
    """
    target_dir = pathlib.Path(directory)
    safe_name = "".join(ch if ch.isalnum() or ch in "-_" else "_"
                        for ch in summary.get("name", "run"))
    if not safe_name.strip("-_"):
        safe_name = "run"
    path = target_dir / f"BENCH_{safe_name}.json"
    _write_text_atomic(
        path, json.dumps(summary, indent=2, sort_keys=False) + "\n")
    return path
