"""Trace context: cross-process request identity and reassembly.

A :class:`TraceContext` is the identity one request carries end to end:
a ``trace_id`` shared by every span the request produces anywhere — the
loadgen client, the server's event loop, its executor threads and the
sharded engine's fork workers — plus the globally-unique id of the span
to parent the next hop under, and optional ``baggage``.

Span identity across processes is a **gid**: ``"<process-tag>:<span-id>"``.
Span ids are only unique within one tracer, so every exported span is
stamped with the exporting process's tag (``p<pid>`` by default; shard
workers use ``w<shard>.g<generation>`` so a respawned worker can never
collide with its predecessor's spans).  The wire form of a context is a
plain JSON-safe dict (:func:`to_wire` / :func:`from_wire`), which rides
the server's length-prefixed JSON protocol (a ``trace`` field on
``query``) and the shard pipe RPC (a ``("trace", ctx, inner)`` wrapper).

Propagation is thread-local and free when unused: :func:`current` is one
thread-local read, and none of the instrumented layers wrap anything on
the wire unless a context *and* an obs recorder are both active.

The second half of the module is offline: :func:`assemble` groups
exported NDJSON span records back into per-request :class:`TraceTree`\\ s,
:func:`attribution` decomposes one tree's wall time into the serving
buckets (queue / execute / pipe / merge / client_net / other), and
:func:`attribution_table` aggregates many trees into the table the
``repro trace`` CLI prints.  This module deliberately imports nothing
from the rest of the package (the tracer imports *it*).
"""

from __future__ import annotations

import os
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

#: span names with a reserved meaning in attribution (see the module
#: docstring of :func:`attribution`).
SERVER_ROOT = "server.request"
CLIENT_ROOT = "client.request"
QUEUE_SPAN = "server.queue"
EXECUTE_SPAN = "server.execute"
FANOUT_SPAN = "shard.fanout"
WORKER_SPAN = "shard.worker"
MERGE_SPAN = "shard.merge"

#: attribution bucket names, in display order.
BUCKETS = ("queue", "execute", "pipe", "merge", "client_net", "other")


@dataclass
class TraceContext:
    """One request's cross-process identity."""

    trace_id: str
    #: gid of the span the receiving hop should parent under.
    parent_gid: str | None = None
    baggage: dict = field(default_factory=dict)


_state = threading.local()
_process_tag: str | None = None


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current() -> TraceContext | None:
    """The calling thread's innermost active trace context, if any."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return None
    return stack[-1]


def current_trace_id() -> str | None:
    """The active trace id, if any (for tagging errors/incidents)."""
    ctx = current()
    return ctx.trace_id if ctx is not None else None


@contextmanager
def trace_scope(ctx: TraceContext | None):
    """Install ``ctx`` for the calling thread for a block; nests (the
    innermost context wins).  ``None`` is an explicit no-op scope."""
    if ctx is None:
        yield None
        return
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


# -- process identity ---------------------------------------------------------

def process_tag() -> str:
    """This process's span-namespace tag (``p<pid>`` unless set)."""
    if _process_tag is not None:
        return _process_tag
    return f"p{os.getpid()}"


def set_process_tag(tag: str | None) -> None:
    """Override the process tag (shard workers: ``w<shard>.g<gen>``)."""
    global _process_tag
    _process_tag = tag


def gid_of(span_id: int) -> str:
    """The globally-unique id of a local span."""
    return f"{process_tag()}:{span_id}"


# -- wire form ----------------------------------------------------------------

def to_wire(ctx: TraceContext) -> dict:
    """The JSON-safe wire form of a context."""
    wire: dict = {"trace_id": ctx.trace_id}
    if ctx.parent_gid is not None:
        wire["parent"] = ctx.parent_gid
    if ctx.baggage:
        wire["baggage"] = dict(ctx.baggage)
    return wire


def from_wire(wire) -> TraceContext | None:
    """Rebuild a context from its wire form (None on anything bogus —
    a malformed trace field must never fail the request it rides)."""
    if not isinstance(wire, dict):
        return None
    trace_id = wire.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent = wire.get("parent")
    baggage = wire.get("baggage")
    return TraceContext(
        trace_id=trace_id,
        parent_gid=parent if isinstance(parent, str) else None,
        baggage=dict(baggage) if isinstance(baggage, dict) else {})


# -- reassembly ---------------------------------------------------------------

class TraceTree:
    """One trace's spans, re-linked parent-to-child across processes."""

    def __init__(self, trace_id: str, spans: list[dict]) -> None:
        self.trace_id = trace_id
        self.spans = spans
        self.by_gid = {span["gid"]: span for span in spans
                       if span.get("gid")}
        self.children: dict[str, list[dict]] = {}
        self.roots: list[dict] = []
        self.orphans: list[dict] = []
        for span in spans:
            parent = span.get("parent_gid")
            if parent is None:
                self.roots.append(span)
            elif parent in self.by_gid:
                self.children.setdefault(parent, []).append(span)
            else:
                self.orphans.append(span)
        for kids in self.children.values():
            kids.sort(key=lambda span: span.get("start", 0.0))

    @property
    def complete(self) -> bool:
        """Exactly one root and every other span linked under it."""
        return len(self.roots) == 1 and not self.orphans

    @property
    def root(self) -> dict | None:
        return self.roots[0] if len(self.roots) == 1 else None

    def named(self, name: str) -> list[dict]:
        return [span for span in self.spans if span.get("name") == name]

    def children_of(self, span: dict) -> list[dict]:
        return self.children.get(span.get("gid"), [])

    def critical_path(self) -> list[dict]:
        """Root-to-leaf path, always descending into the slowest child."""
        path: list[dict] = []
        span = self.root
        while span is not None:
            path.append(span)
            kids = self.children_of(span)
            span = (max(kids, key=lambda k: k.get("seconds", 0.0))
                    if kids else None)
        return path


def assemble(records: list[dict]) -> list[TraceTree]:
    """Group exported span records into per-trace trees.

    Records without a ``trace_id`` (untraced spans sharing the log) are
    ignored.  Trees come back ordered by their earliest span start, so
    a log replays in roughly arrival order.
    """
    by_trace: dict[str, list[dict]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id:
            by_trace.setdefault(trace_id, []).append(record)
    trees = [TraceTree(trace_id, spans)
             for trace_id, spans in by_trace.items()]
    trees.sort(key=lambda tree: min(
        (span.get("start", 0.0) for span in tree.spans), default=0.0))
    return trees


def completeness(trees: list[TraceTree]) -> dict:
    """How many traces reassembled into complete single-root trees."""
    total = len(trees)
    complete = sum(1 for tree in trees if tree.complete)
    return {
        "traces": total,
        "complete": complete,
        "incomplete": total - complete,
        "complete_pct": (100.0 * complete / total) if total else 100.0,
    }


def attribution(tree: TraceTree) -> dict:
    """Decompose one request's wall time into serving buckets.

    * ``queue`` — admission-queue wait (``server.queue``);
    * ``execute`` — engine work: per fan-out, the slowest shard's
      ``shard.worker`` span (the fan-out's critical path), or the whole
      ``server.execute`` span when the engine is not sharded;
    * ``pipe`` — fan-out wall time not covered by the slowest worker or
      the merge: (de)serialization and pipe transport;
    * ``merge`` — parent-side result merging (``shard.merge``);
    * ``client_net`` — client-observed latency beyond the server span:
      socket transport and client-side scheduling;
    * ``other`` — the unattributed remainder (dispatch, reply
      serialization, lock waits).

    All values are seconds; ``total`` is the root span's duration.
    """
    out = {bucket: 0.0 for bucket in BUCKETS}
    root = tree.root
    if root is None:
        return {"total": 0.0, **out}
    total = root.get("seconds", 0.0)
    servers = tree.named(SERVER_ROOT)
    if root.get("name") == CLIENT_ROOT and servers:
        server_seconds = sum(s.get("seconds", 0.0) for s in servers)
        out["client_net"] = max(0.0, total - server_seconds)
    out["queue"] = sum(s.get("seconds", 0.0)
                       for s in tree.named(QUEUE_SPAN))
    fanouts = tree.named(FANOUT_SPAN)
    if fanouts:
        for fanout in fanouts:
            kids = tree.children_of(fanout)
            workers = [k.get("seconds", 0.0) for k in kids
                       if k.get("name") == WORKER_SPAN]
            merge = sum(k.get("seconds", 0.0) for k in kids
                        if k.get("name") == MERGE_SPAN)
            slowest = max(workers, default=0.0)
            out["execute"] += slowest
            out["merge"] += merge
            out["pipe"] += max(
                0.0, fanout.get("seconds", 0.0) - slowest - merge)
    else:
        out["execute"] = sum(s.get("seconds", 0.0)
                             for s in tree.named(EXECUTE_SPAN))
    accounted = sum(out[b] for b in BUCKETS if b != "other")
    out["other"] = max(0.0, total - accounted)
    return {"total": total, **out}


def attribution_table(trees: list[TraceTree]) -> dict:
    """Aggregate bucket totals over complete trees: the where-does-the-
    time-go table (seconds, percent of total, and mean ms/request)."""
    totals = {bucket: 0.0 for bucket in BUCKETS}
    wall = 0.0
    counted = 0
    ttfr_ms: list[float] = []
    for tree in trees:
        if not tree.complete:
            continue
        counted += 1
        decomposed = attribution(tree)
        wall += decomposed["total"]
        for bucket in BUCKETS:
            totals[bucket] += decomposed[bucket]
        for span in tree.named(SERVER_ROOT) or tree.roots:
            value = span.get("attrs", {}).get("ttfr_ms")
            if isinstance(value, (int, float)):
                ttfr_ms.append(float(value))
    table = {
        "requests": counted,
        "total_seconds": wall,
        "buckets": {
            bucket: {
                "seconds": totals[bucket],
                "pct": (100.0 * totals[bucket] / wall) if wall else 0.0,
                "mean_ms": (totals[bucket] * 1000.0 / counted)
                           if counted else 0.0,
            }
            for bucket in BUCKETS
        },
    }
    if ttfr_ms:
        table["ttfr_ms_mean"] = sum(ttfr_ms) / len(ttfr_ms)
    return table


def format_attribution(table: dict) -> str:
    """The attribution table as aligned text."""
    lines = [f"time attribution over {table['requests']} complete "
             f"request(s), {table['total_seconds'] * 1000:.1f} ms total:",
             f"  {'bucket':<12}{'ms total':>10}{'mean ms':>10}"
             f"{'share':>8}"]
    for bucket in BUCKETS:
        cell = table["buckets"][bucket]
        lines.append(f"  {bucket:<12}{cell['seconds'] * 1000:>10.2f}"
                     f"{cell['mean_ms']:>10.3f}{cell['pct']:>7.1f}%")
    if "ttfr_ms_mean" in table:
        lines.append(f"  mean time-to-first-result: "
                     f"{table['ttfr_ms_mean']:.3f} ms")
    return "\n".join(lines)


def render_tree(tree: TraceTree, indent: str = "") -> str:
    """One trace as an indented text tree (critical path marked *)."""
    critical = {id(span) for span in tree.critical_path()}
    lines = [f"trace {tree.trace_id} "
             f"({'complete' if tree.complete else 'INCOMPLETE'}, "
             f"{len(tree.spans)} span(s))"]

    def walk(span: dict, depth: int) -> None:
        mark = "*" if id(span) in critical else " "
        attrs = span.get("attrs", {})
        detail = " ".join(f"{key}={value}" for key, value in
                          sorted(attrs.items()) if key != "ttfr_ms")
        lines.append(
            f"{indent}{mark} {'  ' * depth}{span.get('name')} "
            f"[{span.get('process', '?')}] "
            f"{span.get('seconds', 0.0) * 1000:.3f} ms"
            + (f"  {detail}" if detail else ""))
        for child in tree.children_of(span):
            walk(child, depth + 1)

    for root in sorted(tree.roots, key=lambda s: s.get("start", 0.0)):
        walk(root, 0)
    for orphan in tree.orphans:
        lines.append(f"{indent}! orphan {orphan.get('name')} "
                     f"[{orphan.get('process', '?')}] parent "
                     f"{orphan.get('parent_gid')!r} missing")
    return "\n".join(lines)
