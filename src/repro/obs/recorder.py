"""The recorder: one observation session, plus the global hook API.

Instrumented layers (the XQuery evaluator, the relstore, the engines)
never import a concrete recorder; they call the module-level hook
functions below.  While no recorder is installed — the default — every
hook is a single global read plus a ``None`` check, so observability
costs effectively nothing when off and the engines' core logic stays
free of bookkeeping.

Usage::

    recorder = Recorder()
    with observing(recorder):
        ...                      # spans/counters/latencies accumulate
    recorder.tracer.spans        # the trace
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .histogram import LatencyHistogram
from .metrics import CounterSet, GaugeSet
from .plan import NULL_PLAN_NODE, PlanProfiler
from .tracer import NULL_SPAN, Span, Tracer


class Recorder:
    """Spans + counters + gauges + latency histograms of one session.

    ``plan`` is the optional EXPLAIN ANALYZE channel: attach a
    :class:`~repro.obs.plan.PlanProfiler` and the ``plan_*`` hooks below
    record operator-level plan trees through the same recorder — there
    is no second instrumentation channel into the engines.
    """

    def __init__(self, name: str = "obs",
                 plan: PlanProfiler | None = None) -> None:
        self.name = name
        self.tracer = Tracer()
        self.counters = CounterSet()
        self.gauges = GaugeSet()
        self.histograms: dict[str, LatencyHistogram] = {}
        self.plan = plan
        #: exported span records adopted from other processes (shard
        #: workers piggyback theirs on RPC replies) — already dicts in
        #: the NDJSON schema, merged with local spans at export time.
        self.foreign_spans: list[dict] = []
        self._lock = threading.Lock()

    def adopt_spans(self, records) -> None:
        """Merge span records exported by another process."""
        with self._lock:
            self.foreign_spans.extend(records)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.setdefault(
                    name, LatencyHistogram())
        return histogram

    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans


#: The installed recorder; ``None`` means observability is off.
_active: Recorder | None = None


def install(recorder: Recorder) -> None:
    """Route the hook API into ``recorder``."""
    global _active
    _active = recorder


def uninstall() -> None:
    """Disable observability (hooks become no-ops again)."""
    global _active
    _active = None


def active() -> Recorder | None:
    """The installed recorder, if any."""
    return _active


@contextmanager
def observing(recorder: Recorder):
    """Install ``recorder`` for the duration of a block, then restore
    whatever was installed before (sessions may nest)."""
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


# -- hook API (what the instrumented layers call) ---------------------------

def span(name: str, **attrs):
    """A tracing span; the shared no-op when no recorder is installed."""
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.tracer.span(name, **attrs)


def adopt_spans(records) -> None:
    """Merge span records from another process; no-op when disabled."""
    recorder = _active
    if recorder is not None and records:
        recorder.adopt_spans(records)


def annotate(**attrs) -> None:
    """Attach attributes to the calling thread's innermost open span;
    no-op when no recorder is installed or no span is open."""
    recorder = _active
    if recorder is None:
        return
    span = recorder.tracer.current_span()
    if span is not None:
        span.attrs.update(attrs)


def count(name: str, amount: int = 1) -> None:
    """Bump a counter; no-op when no recorder is installed."""
    recorder = _active
    if recorder is not None:
        recorder.counters.add(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge; no-op when no recorder is installed."""
    recorder = _active
    if recorder is not None:
        recorder.gauges.set(name, value)


def record_latency(name: str, seconds: float) -> None:
    """Add one sample to a latency histogram; no-op when disabled."""
    recorder = _active
    if recorder is not None:
        recorder.histogram(name).add(seconds)


def counters_snapshot() -> dict[str, int] | None:
    """Snapshot for per-operation attribution; None when disabled."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.counters.snapshot()


def counters_delta(before: dict[str, int] | None) -> dict[str, int] | None:
    """Counters moved since ``before``; None when disabled."""
    recorder = _active
    if recorder is None or before is None:
        return None
    return recorder.counters.delta(before)


# -- plan-profiling hooks (EXPLAIN ANALYZE) ----------------------------------
#
# These piggyback on the installed recorder: no recorder, or a recorder
# without a PlanProfiler attached, and every hook is a global read plus
# None checks returning a shared no-op — the benchmark's default path
# records no plan nodes and pays effectively nothing.

def plan() -> PlanProfiler | None:
    """The active plan profiler, if any (None disables profiling)."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.plan


def plan_tree(**attrs):
    """Open (or merge into) the plan tree for ``attrs``; no-op handle
    when plan profiling is disabled."""
    recorder = _active
    if recorder is None or recorder.plan is None:
        return NULL_PLAN_NODE
    return recorder.plan.tree(**attrs)


def plan_scope(**attrs):
    """Ambient attrs (e.g. the driver's scale) merged into every tree
    opened inside the block; no-op handle when disabled."""
    recorder = _active
    if recorder is None or recorder.plan is None:
        return NULL_PLAN_NODE
    return recorder.plan.scope(**attrs)


def plan_node(op: str, **attrs):
    """A structural plan node under the current tree; no-op handle when
    plan profiling is disabled."""
    recorder = _active
    if recorder is None or recorder.plan is None:
        return NULL_PLAN_NODE
    return recorder.plan.node(op, **attrs)
