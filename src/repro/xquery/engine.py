"""Public face of the XQuery engine: compile once, run many times."""

from __future__ import annotations

from typing import Optional

from ..obs.recorder import count as _obs_count
from ..xml.nodes import Document, Node
from .context import Context, DocumentProvider, EmptyProvider
from .evaluator import evaluate
from .parser import parse_query


class CompiledQuery:
    """A parsed query, reusable across contexts and parameter bindings."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.expression = parse_query(text)

    def run(self, provider: Optional[DocumentProvider] = None,
            variables: Optional[dict] = None,
            context_item: object = None) -> list:
        """Evaluate the query and return the result sequence.

        ``variables`` maps variable names (without ``$``) to values; plain
        Python values are wrapped into one-item sequences, lists pass
        through as sequences.
        """
        bound: dict[str, list] = {}
        if variables:
            for name, value in variables.items():
                bound[name] = value if isinstance(value, list) else [value]
        context = Context(variables=bound, item=context_item,
                          provider=provider or EmptyProvider())
        return evaluate(self.expression, context)


class XQueryEngine:
    """Compile-and-run facade with a small compiled-query LRU cache."""

    def __init__(self, cache_size: int = 256) -> None:
        # Insertion order doubles as recency order: hits reinsert their
        # key, so the first key is always the least recently used.
        self._cache: dict[str, CompiledQuery] = {}
        self._cache_size = cache_size

    def compile(self, text: str) -> CompiledQuery:
        """Compile ``text``, reusing the cache when possible."""
        query = self._cache.pop(text, None)
        if query is not None:
            _obs_count("xquery.cache.hit")
            self._cache[text] = query          # refresh recency
            return query
        _obs_count("xquery.cache.miss")
        query = CompiledQuery(text)
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))   # evict true LRU
        self._cache[text] = query
        return query

    def execute(self, text: str,
                provider: Optional[DocumentProvider] = None,
                variables: Optional[dict] = None,
                context_item: object = None) -> list:
        """Compile (cached) and evaluate ``text``."""
        return self.compile(text).run(provider, variables, context_item)


class StaticCollection:
    """An in-memory :class:`DocumentProvider` over a list of documents."""

    def __init__(self, documents: Optional[list[Document]] = None) -> None:
        self._by_name: dict[str, Document] = {}
        self._documents: list[Document] = []
        for document in documents or []:
            self.add(document)

    def add(self, document: Document) -> None:
        self._documents.append(document)
        if document.name:
            self._by_name[document.name] = document

    def remove(self, name: str) -> Document:
        """Remove (and return) the document called ``name``."""
        document = self._by_name.pop(name)
        self._documents.remove(document)
        return document

    def doc(self, name: str) -> Document:
        return self._by_name[name]

    def collection(self, name: Optional[str] = None) -> list[Document]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)


def run_query(text: str, documents: Optional[list[Document]] = None,
              variables: Optional[dict] = None,
              context_item: object = None) -> list:
    """One-shot convenience: compile and evaluate ``text``.

    ``documents`` become the default collection (and are addressable by
    name via ``doc()``); if exactly one document is given and no explicit
    ``context_item`` is supplied, it becomes the context item so relative
    and absolute paths work naturally.
    """
    provider = StaticCollection(documents or [])
    if context_item is None and documents and len(documents) == 1:
        context_item = documents[0]
    return XQueryEngine().execute(text, provider, variables, context_item)
