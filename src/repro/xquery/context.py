"""Dynamic evaluation context for the XQuery engine."""

from __future__ import annotations

from typing import Optional, Protocol

from ..errors import XQueryEvalError
from ..xml.nodes import Document


class DocumentProvider(Protocol):
    """How the evaluator reaches stored documents.

    Engines implement this to expose their collections to ``fn:doc`` and
    ``fn:collection``.
    """

    def doc(self, name: str) -> Document:
        """Return the document called ``name`` (raise KeyError if absent)."""
        ...

    def collection(self, name: Optional[str] = None) -> list[Document]:
        """Return all documents of the (default) collection."""
        ...


class EmptyProvider:
    """A provider with no documents (pure-expression evaluation)."""

    def doc(self, name: str) -> Document:
        raise KeyError(name)

    def collection(self, name: Optional[str] = None) -> list[Document]:
        return []


class Context:
    """Variable bindings + focus (context item, position, size).

    Contexts are immutable from the evaluator's perspective: binding a
    variable or moving the focus produces a child context, so FLWOR tuple
    streams never interfere with one another.
    """

    __slots__ = ("variables", "item", "position", "size", "provider")

    def __init__(self, variables: Optional[dict] = None,
                 item: object = None, position: int = 1, size: int = 1,
                 provider: Optional[DocumentProvider] = None) -> None:
        self.variables: dict[str, list] = variables or {}
        self.item = item
        self.position = position
        self.size = size
        self.provider: DocumentProvider = provider or EmptyProvider()

    def bind(self, name: str, value: list) -> "Context":
        """A child context with ``$name`` bound to ``value`` (a sequence)."""
        variables = dict(self.variables)
        variables[name] = value
        return Context(variables, self.item, self.position, self.size,
                       self.provider)

    def focus(self, item: object, position: int, size: int) -> "Context":
        """A child context with a new focus (for path steps/predicates)."""
        return Context(self.variables, item, position, size, self.provider)

    def variable(self, name: str) -> list:
        try:
            return self.variables[name]
        except KeyError:
            raise XQueryEvalError(f"undefined variable ${name}") from None

    def require_item(self) -> object:
        if self.item is None:
            raise XQueryEvalError("context item is undefined")
        return self.item
