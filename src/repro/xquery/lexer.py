"""Pull-based lexer for the XQuery subset.

The lexer has two jobs.  In *expression mode* :meth:`Lexer.next` produces
:class:`Token` objects, skipping whitespace and ``(: ... :)`` comments.  For
*direct element constructors* the parser takes over character-level control
through the raw helpers (:meth:`peek_char`, :meth:`take_char`,
:meth:`match_literal`, :meth:`read_name`), because XQuery constructor
content is not token-structured.

XQuery keywords are not reserved words, so every name lexes as a NAME
token; the parser decides contextually whether ``for``/``return``/``div``
etc. act as keywords.

Whether ``<`` starts a comparison or a direct constructor is decided with
the standard heuristic: after a token that can end an operand (a literal, a
name, ``)``, ``]``, ``.``, ``}`` or a variable) ``<`` is the less-than
operator; anywhere else, if it is immediately followed by a name start
character, it begins a constructor and the lexer emits TAG_START.
"""

from __future__ import annotations

from ..errors import XQuerySyntaxError
from .tokens import (
    DECIMAL,
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    SYMBOLS,
    TAG_START,
    Token,
    VARIABLE,
)

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")

# Token shapes after which '<' must be the less-than operator.
_OPERAND_END_KINDS = {NAME, VARIABLE, STRING, INTEGER, DECIMAL}
_OPERAND_END_SYMBOLS = {")", "]", "}", "."}

# Keyword names after which an expression (hence a constructor) begins.
# Keywords are not reserved in XQuery, so a NAME normally ends an operand;
# these are the operator/clause keywords where that cannot be the case.
_EXPRESSION_FOLLOWS = {
    "return", "in", "satisfies", "then", "else", "where", "and", "or",
    "to", "union", "div", "idiv", "mod", "eq", "ne", "lt", "le", "gt",
    "ge", "is", "by", "if", "some", "every", "for", "let", "order",
    "stable", "case", "as", "cast",
}


class Lexer:
    """Tokenizer over a query string; also exposes raw character access."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._previous: Token | None = None

    # -- raw character helpers (used by the constructor parser) -----------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek_char(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take_char(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of query")
        char = self.text[self.pos]
        self.pos += 1
        return char

    def match_literal(self, literal: str) -> bool:
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def read_name(self) -> str:
        """Read a (possibly qualified) name at the current raw position."""
        start = self.pos
        if self.pos >= len(self.text) or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in _NAME_CHARS:
                self.pos += 1
            elif (char == ":" and self.pos + 1 < len(self.text)
                  and self.text[self.pos + 1] in _NAME_START
                  and ":" not in self.text[start:self.pos]):
                self.pos += 1
            else:
                break
        return self.text[start:self.pos]

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def error(self, message: str) -> XQuerySyntaxError:
        return XQuerySyntaxError(message, self.pos)

    # -- expression-mode tokenization --------------------------------------

    def next(self) -> Token:
        """Return the next token in expression mode."""
        self._skip_ignorable()
        start = self.pos
        if self.pos >= len(self.text):
            token = Token(EOF, "", start)
            self._previous = token
            return token

        char = self.text[self.pos]

        if char == "$":
            self.pos += 1
            name = self.read_name()
            token = Token(VARIABLE, name, start)
        elif char in "\"'":
            token = Token(STRING, self._read_string(char), start)
        elif char.isdigit() or (char == "." and self._digit_follows()):
            token = self._read_number(start)
        elif char in _NAME_START:
            token = Token(NAME, self.read_name(), start)
        elif char == "<" and self._is_constructor_start():
            self.pos += 1
            tag = self.read_name()
            token = Token(TAG_START, tag, start)
        else:
            token = self._read_symbol(start)

        self._previous = token
        return token

    def _skip_ignorable(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in _WHITESPACE:
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        depth = 0
        while self.pos < len(self.text):
            if self.text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment")

    def _digit_follows(self) -> bool:
        return (self.pos + 1 < len(self.text)
                and self.text[self.pos + 1].isdigit())

    def _read_string(self, quote: str) -> str:
        self.pos += 1
        parts: list[str] = []
        while True:
            index = self.text.find(quote, self.pos)
            if index < 0:
                raise self.error("unterminated string literal")
            parts.append(self.text[self.pos:index])
            self.pos = index + 1
            # Doubled quote is an escaped quote character.
            if self.peek_char() == quote:
                parts.append(quote)
                self.pos += 1
            else:
                return "".join(parts)

    def _read_number(self, start: int) -> Token:
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        is_decimal = False
        if (self.pos < len(self.text) and self.text[self.pos] == "."
                and not self.text.startswith("..", self.pos)):
            is_decimal = True
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "eE":
            is_decimal = True
            self.pos += 1
            if self.peek_char() in "+-":
                self.pos += 1
            if not self.peek_char().isdigit():
                raise self.error("malformed number literal")
            while (self.pos < len(self.text)
                   and self.text[self.pos].isdigit()):
                self.pos += 1
        lexeme = self.text[start:self.pos]
        return Token(DECIMAL if is_decimal else INTEGER, lexeme, start)

    def _is_constructor_start(self) -> bool:
        follower = (self.text[self.pos + 1]
                    if self.pos + 1 < len(self.text) else "")
        if follower not in _NAME_START:
            return False
        previous = self._previous
        if previous is None:
            return True
        if previous.kind == NAME:
            return previous.value in _EXPRESSION_FOLLOWS
        if previous.kind in _OPERAND_END_KINDS:
            return False
        if previous.kind == SYMBOL and previous.value in _OPERAND_END_SYMBOLS:
            return False
        return True

    def _read_symbol(self, start: int) -> Token:
        for symbol in SYMBOLS:
            if self.text.startswith(symbol, self.pos):
                self.pos += len(symbol)
                return Token(SYMBOL, symbol, start)
        raise self.error(f"unexpected character {self.text[self.pos]!r}")
