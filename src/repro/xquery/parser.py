"""Recursive-descent parser producing the XQuery AST.

Grammar (a pragmatic XQuery 1.0 subset covering the XML Query Use Cases
functionality exercised by XBench):

    Query          ::= Expr
    Expr           ::= ExprSingle ("," ExprSingle)*
    ExprSingle     ::= FLWORExpr | QuantifiedExpr | IfExpr | OrExpr
    FLWORExpr      ::= (ForClause | LetClause)+ ("where" ExprSingle)?
                       ("order" "by" OrderSpecList)? "return" ExprSingle
    QuantifiedExpr ::= ("some"|"every") "$v in" ExprSingle
                       ("," "$v in" ExprSingle)* "satisfies" ExprSingle
    IfExpr         ::= "if" "(" Expr ")" "then" ExprSingle "else" ExprSingle
    OrExpr         ::= AndExpr ("or" AndExpr)*
    AndExpr        ::= ComparisonExpr ("and" ComparisonExpr)*
    ComparisonExpr ::= RangeExpr ((ValueComp|GeneralComp|NodeComp) RangeExpr)?
    RangeExpr      ::= AdditiveExpr ("to" AdditiveExpr)?
    AdditiveExpr   ::= MultiplicativeExpr (("+"|"-") MultiplicativeExpr)*
    Multiplicative ::= UnionExpr (("*"|"div"|"idiv"|"mod") UnionExpr)*
    UnionExpr      ::= CastExpr (("union"|"|") CastExpr)*
    CastExpr       ::= UnaryExpr ("cast" "as" TypeName)?
    UnaryExpr      ::= ("-"|"+")* PathExpr
    PathExpr       ::= ("/" RelativePath?) | ("//" RelativePath)
                     | RelativePath
    RelativePath   ::= StepExpr (("/"|"//") StepExpr)*
    StepExpr       ::= FilterExpr | AxisStep
    AxisStep       ::= (Axis "::")? NodeTest Predicate*
                     | "@" NodeTest Predicate* | ".."
    FilterExpr     ::= PrimaryExpr Predicate*
    PrimaryExpr    ::= Literal | "$" Name | "(" Expr? ")" | "."
                     | FunctionCall | DirElemConstructor

Direct element constructors (``<r>{...}</r>``) are parsed with the lexer in
raw-character mode, so arbitrary nested content and enclosed expressions
work; ``{{``/``}}`` escape literal braces.
"""

from __future__ import annotations

from sys import intern as _intern

from ..errors import XQuerySyntaxError
from . import ast
from .lexer import Lexer
from .tokens import (
    DECIMAL,
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    TAG_START,
    Token,
    VARIABLE,
)

_GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
_NODE_COMPARISON_SYMBOLS = {"<<", ">>"}
_KIND_TESTS = {"text", "node", "element", "comment"}
_AXES = {
    "child", "descendant", "descendant-or-self", "attribute", "self",
    "parent",
}
_PREDEFINED_ENTITIES = {
    "lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'",
}


def parse_query(text: str) -> object:
    """Parse ``text`` and return the root AST expression."""
    parser = Parser(text)
    expression = parser.parse_expr()
    if parser.tok.kind != EOF:
        raise parser.error(f"unexpected {parser.tok.value!r} after query")
    return expression


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, text: str) -> None:
        self.lexer = Lexer(text)
        self.tok: Token = self.lexer.next()

    # -- token plumbing ----------------------------------------------------

    def advance(self) -> Token:
        token = self.tok
        self.tok = self.lexer.next()
        return token

    def error(self, message: str) -> XQuerySyntaxError:
        return XQuerySyntaxError(message, self.tok.position)

    def accept_symbol(self, *lexemes: str) -> Token | None:
        if self.tok.is_symbol(*lexemes):
            return self.advance()
        return None

    def expect_symbol(self, lexeme: str) -> Token:
        if not self.tok.is_symbol(lexeme):
            raise self.error(
                f"expected {lexeme!r}, found {self.tok.value!r}")
        return self.advance()

    def accept_name(self, *names: str) -> Token | None:
        if self.tok.is_name(*names):
            return self.advance()
        return None

    def expect_name(self, name: str) -> Token:
        if not self.tok.is_name(name):
            raise self.error(
                f"expected keyword {name!r}, found {self.tok.value!r}")
        return self.advance()

    def _next_raw_char(self) -> str:
        """Peek the first significant character after the current token."""
        text, pos = self.lexer.text, self.lexer.pos
        while pos < len(text):
            if text[pos] in " \t\r\n":
                pos += 1
            elif text.startswith("(:", pos):
                depth, pos = 1, pos + 2
                while pos < len(text) and depth:
                    if text.startswith("(:", pos):
                        depth, pos = depth + 1, pos + 2
                    elif text.startswith(":)", pos):
                        depth, pos = depth - 1, pos + 2
                    else:
                        pos += 1
            else:
                return text[pos]
        return ""

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> object:
        items = [self.parse_expr_single()]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return ast.Sequence(items)

    def parse_expr_single(self) -> object:
        if self.tok.kind == NAME:
            keyword = self.tok.value
            follower = self._next_raw_char()
            if keyword in ("for", "let") and follower == "$":
                return self.parse_flwor()
            if keyword in ("some", "every") and follower == "$":
                return self.parse_quantified()
            if keyword == "if" and follower == "(":
                return self.parse_if()
        return self.parse_or()

    # -- FLWOR ----------------------------------------------------------------

    def parse_flwor(self) -> ast.FLWOR:
        clauses: list = []
        where = None
        while True:
            if self.tok.kind == NAME and self.tok.value in ("for", "let") \
                    and self._next_raw_char() == "$":
                if self.advance().value == "for":
                    clauses.extend(self._parse_for_bindings())
                else:
                    clauses.extend(self._parse_let_bindings())
            elif self.tok.is_name("where"):
                self.advance()
                condition = self.parse_expr_single()
                # A where followed by more for/let clauses interleaves;
                # a final where becomes the FLWOR's where slot.
                if self.tok.kind == NAME \
                        and self.tok.value in ("for", "let") \
                        and self._next_raw_char() == "$":
                    clauses.append(ast.WhereClause(condition))
                else:
                    where = condition
                    break
            else:
                break

        order_by: list[ast.OrderSpec] = []
        if self.tok.is_name("stable"):
            self.advance()
            self.expect_name("order")
            self.expect_name("by")
            order_by = self._parse_order_specs()
        elif self.tok.is_name("order"):
            self.advance()
            self.expect_name("by")
            order_by = self._parse_order_specs()

        self.expect_name("return")
        return_expr = self.parse_expr_single()
        return ast.FLWOR(clauses, where, order_by, return_expr)

    def _parse_for_bindings(self) -> list[ast.ForClause]:
        bindings = []
        while True:
            var = self._expect_variable()
            position_var = None
            if self.accept_name("at"):
                position_var = self._expect_variable()
            self.expect_name("in")
            expr = self.parse_expr_single()
            bindings.append(ast.ForClause(var, expr, position_var))
            if not self.accept_symbol(","):
                return bindings

    def _parse_let_bindings(self) -> list[ast.LetClause]:
        bindings = []
        while True:
            var = self._expect_variable()
            self.expect_symbol(":=")
            expr = self.parse_expr_single()
            bindings.append(ast.LetClause(var, expr))
            if not self.accept_symbol(","):
                return bindings

    def _expect_variable(self) -> str:
        if self.tok.kind != VARIABLE:
            raise self.error(f"expected a $variable, found {self.tok.value!r}")
        return self.advance().value

    def _parse_order_specs(self) -> list[ast.OrderSpec]:
        specs = []
        while True:
            expr = self.parse_expr_single()
            descending = False
            if self.accept_name("descending"):
                descending = True
            else:
                self.accept_name("ascending")
            empty_least = True
            if self.accept_name("empty"):
                if self.accept_name("greatest"):
                    empty_least = False
                else:
                    self.expect_name("least")
            specs.append(ast.OrderSpec(expr, descending, empty_least))
            if not self.accept_symbol(","):
                return specs

    def parse_quantified(self) -> ast.Quantified:
        quantifier = self.advance().value
        bindings = []
        while True:
            var = self._expect_variable()
            self.expect_name("in")
            expr = self.parse_expr_single()
            bindings.append((var, expr))
            if not self.accept_symbol(","):
                break
        self.expect_name("satisfies")
        condition = self.parse_expr_single()
        return ast.Quantified(quantifier, bindings, condition)

    def parse_if(self) -> ast.IfExpr:
        self.expect_name("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then_branch = self.parse_expr_single()
        self.expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.IfExpr(condition, then_branch, else_branch)

    # -- operator precedence chain ---------------------------------------------

    def parse_or(self) -> object:
        left = self.parse_and()
        while self.tok.is_name("or"):
            self.advance()
            left = ast.AndOr("or", left, self.parse_and())
        return left

    def parse_and(self) -> object:
        left = self.parse_comparison()
        while self.tok.is_name("and"):
            self.advance()
            left = ast.AndOr("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> object:
        left = self.parse_range()
        op = None
        if self.tok.kind == SYMBOL and (
                self.tok.value in _GENERAL_COMPARISONS
                or self.tok.value in _NODE_COMPARISON_SYMBOLS):
            op = self.advance().value
        elif self.tok.kind == NAME and self.tok.value in _VALUE_COMPARISONS:
            op = self.advance().value
        elif self.tok.is_name("is"):
            op = self.advance().value
        if op is None:
            return left
        right = self.parse_range()
        return ast.Comparison(op, left, right)

    def parse_range(self) -> object:
        left = self.parse_additive()
        if self.tok.is_name("to"):
            self.advance()
            return ast.RangeExpr(left, self.parse_additive())
        return left

    def parse_additive(self) -> object:
        left = self.parse_multiplicative()
        while self.tok.is_symbol("+", "-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> object:
        left = self.parse_union()
        while (self.tok.is_symbol("*", "||")
               or self.tok.is_name("div", "idiv", "mod")):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_union())
        return left

    def parse_union(self) -> object:
        left = self.parse_cast()
        while self.tok.is_symbol("|") or self.tok.is_name("union"):
            self.advance()
            left = ast.BinaryOp("union", left, self.parse_cast())
        return left

    def parse_cast(self) -> object:
        expr = self.parse_unary()
        if self.tok.is_name("cast"):
            self.advance()
            self.expect_name("as")
            if self.tok.kind != NAME:
                raise self.error("expected a type name after 'cast as'")
            type_name = self.advance().value
            self.accept_symbol("?")
            return ast.CastExpr(expr, type_name)
        return expr

    def parse_unary(self) -> object:
        if self.tok.is_symbol("-", "+"):
            op = self.advance().value
            return ast.UnaryOp(op, self.parse_unary())
        return self.parse_path()

    # -- paths ------------------------------------------------------------------

    def parse_path(self) -> object:
        if self.tok.is_symbol("/"):
            self.advance()
            if self._starts_step():
                steps = self._parse_relative_steps()
            else:
                steps = []
            return ast.PathExpr(steps, absolute=True)
        if self.tok.is_symbol("//"):
            self.advance()
            steps: list = [ast.AxisStep("descendant-or-self", "node()")]
            steps.extend(self._parse_relative_steps())
            return ast.PathExpr(steps, absolute=True)
        if not self._starts_step():
            raise self.error(f"unexpected token {self.tok.value!r}")
        steps = self._parse_relative_steps()
        if len(steps) == 1 and not isinstance(steps[0], ast.AxisStep):
            return steps[0]
        return ast.PathExpr(steps, absolute=False)

    def _parse_relative_steps(self) -> list:
        steps = [self.parse_step()]
        while True:
            if self.accept_symbol("/"):
                steps.append(self.parse_step())
            elif self.accept_symbol("//"):
                steps.append(ast.AxisStep("descendant-or-self", "node()"))
                steps.append(self.parse_step())
            else:
                return steps

    def _starts_step(self) -> bool:
        token = self.tok
        if token.kind in (STRING, INTEGER, DECIMAL, VARIABLE, NAME,
                          TAG_START):
            return True
        return token.is_symbol("(", ".", "..", "@", "*", "$")

    def parse_step(self) -> object:
        token = self.tok

        # Primary-expression steps (function calls, variables, literals...).
        if token.kind in (STRING, INTEGER, DECIMAL, VARIABLE, TAG_START) \
                or token.is_symbol("(", "."):
            return self._parse_filter()
        if token.kind == NAME and self._next_raw_char() == "(" \
                and token.value not in _KIND_TESTS:
            return self._parse_filter()
        if token.kind == NAME and token.value in ("element", "attribute",
                                                  "text"):
            computed = self._try_computed_constructor(token.value)
            if computed is not None:
                predicates = self._parse_predicates()
                return ast.Filter(computed, predicates) if predicates \
                    else computed

        # Axis steps.
        if self.accept_symbol(".."):
            return ast.AxisStep("parent", "node()",
                                self._parse_predicates())
        if self.accept_symbol("@"):
            test = self._parse_name_test()
            return ast.AxisStep("attribute", test, self._parse_predicates())

        axis = "child"
        if token.kind == NAME and token.value in _AXES \
                and self._next_raw_char() == ":":
            # Peek for '::' to distinguish axis from a QName like xs:date.
            saved_pos, saved_tok = self.lexer.pos, self.tok
            self.advance()
            if self.tok.is_symbol("::"):
                axis = saved_tok.value
                self.advance()
            else:
                self.lexer.pos, self.tok = saved_pos, saved_tok
        test = self._parse_node_test()
        if axis == "attribute" and test.endswith("()"):
            raise self.error("attribute axis requires a name test")
        return ast.AxisStep(axis, test, self._parse_predicates())

    def _parse_node_test(self) -> str:
        if self.tok.kind == NAME and self.tok.value in _KIND_TESTS \
                and self._next_raw_char() == "(":
            kind = self.advance().value
            self.expect_symbol("(")
            self.expect_symbol(")")
            return f"{kind}()"
        return self._parse_name_test()

    def _parse_name_test(self) -> str:
        if self.accept_symbol("*"):
            return "*"
        if self.tok.kind != NAME:
            raise self.error(
                f"expected a name test, found {self.tok.value!r}")
        # Interned to match the parser-interned tag names, so the
        # evaluator's name-test comparisons are pointer comparisons.
        return _intern(self.advance().value)

    def _parse_predicates(self) -> list:
        predicates = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    def _parse_filter(self) -> object:
        base = self.parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return ast.Filter(base, predicates)
        return base

    # -- primaries -----------------------------------------------------------------

    def parse_primary(self) -> object:
        token = self.tok
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == INTEGER:
            self.advance()
            return ast.Literal(int(token.value))
        if token.kind == DECIMAL:
            self.advance()
            return ast.Literal(float(token.value))
        if token.kind == VARIABLE:
            self.advance()
            return ast.VarRef(token.value)
        if token.is_symbol("."):
            self.advance()
            return ast.ContextItem()
        if self.accept_symbol("("):
            if self.accept_symbol(")"):
                return ast.Sequence([])
            expression = self.parse_expr()
            self.expect_symbol(")")
            return expression
        if token.kind == TAG_START:
            return self._parse_direct_constructor()
        if token.kind == NAME:
            if token.value in ("element", "attribute", "text"):
                computed = self._try_computed_constructor(token.value)
                if computed is not None:
                    return computed
            return self._parse_function_call()
        raise self.error(f"unexpected token {token.value!r}")

    def _try_computed_constructor(self, kind: str):
        """Parse ``element n {e}`` / ``attribute n {e}`` / ``text {e}``.

        Keywords are not reserved, so this backtracks when the shape
        does not match (e.g. ``text()`` kind tests, functions named
        ``element``).
        """
        saved_pos, saved_tok = self.lexer.pos, self.tok
        self.advance()                      # consume the keyword

        name: object | None = None
        if kind in ("element", "attribute"):
            if self.tok.kind == NAME and self._next_raw_char() == "{":
                name = self.advance().value
            elif self.tok.is_symbol("{"):
                self.advance()
                name = self.parse_expr()
                self.expect_symbol("}")
            else:
                self.lexer.pos, self.tok = saved_pos, saved_tok
                return None
        if not self.tok.is_symbol("{"):
            self.lexer.pos, self.tok = saved_pos, saved_tok
            return None
        self.advance()
        content = None
        if not self.tok.is_symbol("}"):
            content = self.parse_expr()
        self.expect_symbol("}")

        if kind == "element":
            return ast.ComputedElementConstructor(name, content)
        if kind == "attribute":
            return ast.ComputedAttributeConstructor(name, content)
        return ast.TextConstructor(content)

    def _parse_function_call(self) -> object:
        name = self.advance().value
        self.expect_symbol("(")
        args: list = []
        if not self.tok.is_symbol(")"):
            args.append(self.parse_expr_single())
            while self.accept_symbol(","):
                args.append(self.parse_expr_single())
        self.expect_symbol(")")
        if name.startswith("xs:"):
            if len(args) != 1:
                raise self.error(
                    f"type constructor {name} takes exactly one argument")
            return ast.CastExpr(args[0], name)
        if name.startswith("fn:"):
            name = name[3:]
        return ast.FunctionCall(name, args)

    # -- direct element constructors ---------------------------------------------------

    def _parse_direct_constructor(self) -> ast.ElementConstructor:
        # self.tok is TAG_START; the raw lexer position is just after the
        # tag name, which is where _parse_nested_constructor expects it.
        tag = self.tok.value
        node = self._parse_nested_constructor(tag)
        self.tok = self.lexer.next()
        return node

    def _parse_attr_parts(self, quote: str) -> list:
        lexer = self.lexer
        parts: list = []
        buffer: list[str] = []
        while True:
            char = lexer.take_char()
            if char == quote:
                if lexer.peek_char() == quote:   # doubled quote escape
                    lexer.take_char()
                    buffer.append(quote)
                    continue
                if buffer:
                    parts.append("".join(buffer))
                return parts
            if char == "{":
                if lexer.peek_char() == "{":
                    lexer.take_char()
                    buffer.append("{")
                    continue
                if buffer:
                    parts.append("".join(buffer))
                    buffer = []
                parts.append(self._parse_enclosed_expr())
            elif char == "}":
                if lexer.peek_char() == "}":
                    lexer.take_char()
                    buffer.append("}")
                else:
                    raise lexer.error("unescaped '}' in attribute value")
            elif char == "&":
                buffer.append(self._parse_entity())
            else:
                buffer.append(char)

    def _parse_constructor_content(self, tag: str) -> list:
        lexer = self.lexer
        parts: list = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append("".join(buffer))
                buffer.clear()

        while True:
            char = lexer.peek_char()
            if char == "":
                raise lexer.error(f"unterminated constructor <{tag}>")
            if char == "<":
                if lexer.match_literal("</"):
                    closing = lexer.read_name()
                    if closing != tag:
                        raise lexer.error(
                            f"mismatched </{closing}>, expected </{tag}>")
                    lexer.skip_space()
                    if lexer.take_char() != ">":
                        raise lexer.error("expected '>' in end tag")
                    flush()
                    return parts
                if lexer.match_literal("<!--"):
                    while not lexer.match_literal("-->"):
                        lexer.take_char()
                elif lexer.match_literal("<![CDATA["):
                    while not lexer.match_literal("]]>"):
                        buffer.append(lexer.take_char())
                else:
                    flush()
                    lexer.take_char()          # consume '<'
                    child_tag = lexer.read_name()
                    parts.append(self._parse_nested_constructor(child_tag))
            elif char == "{":
                lexer.take_char()
                if lexer.peek_char() == "{":
                    lexer.take_char()
                    buffer.append("{")
                    continue
                flush()
                parts.append(self._parse_enclosed_expr())
            elif char == "}":
                lexer.take_char()
                if lexer.peek_char() == "}":
                    lexer.take_char()
                    buffer.append("}")
                else:
                    raise lexer.error("unescaped '}' in element content")
            elif char == "&":
                lexer.take_char()
                buffer.append(self._parse_entity())
            else:
                buffer.append(lexer.take_char())

    def _parse_nested_constructor(self, tag: str) -> ast.ElementConstructor:
        """Parse a nested constructor; raw position is just after the name."""
        lexer = self.lexer
        attributes: list = []
        while True:
            lexer.skip_space()
            char = lexer.peek_char()
            if char == "/":
                lexer.take_char()
                if lexer.take_char() != ">":
                    raise lexer.error("expected '/>'")
                return ast.ElementConstructor(tag, attributes, [])
            if char == ">":
                lexer.take_char()
                content = self._parse_constructor_content(tag)
                return ast.ElementConstructor(tag, attributes, content)
            name = lexer.read_name()
            lexer.skip_space()
            if lexer.take_char() != "=":
                raise lexer.error("expected '=' in attribute")
            lexer.skip_space()
            quote = lexer.take_char()
            if quote not in "\"'":
                raise lexer.error("attribute value must be quoted")
            attributes.append((name, self._parse_attr_parts(quote)))

    def _parse_enclosed_expr(self) -> object:
        """Parse ``Expr`` after an opening ``{`` and consume the ``}``."""
        self.tok = self.lexer.next()
        expression = self.parse_expr()
        if not self.tok.is_symbol("}"):
            raise self.error("expected '}' to close enclosed expression")
        # Do not pull the next token: the caller resumes raw-mode scanning
        # at the lexer position, which is just past the '}'.
        return expression

    def _parse_entity(self) -> str:
        lexer = self.lexer
        name_chars: list[str] = []
        while True:
            char = lexer.take_char()
            if char == ";":
                break
            name_chars.append(char)
            if len(name_chars) > 8:
                raise lexer.error("malformed entity reference")
        name = "".join(name_chars)
        if name.startswith("#x") or name.startswith("#X"):
            return chr(int(name[2:], 16))
        if name.startswith("#"):
            return chr(int(name[1:]))
        if name in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[name]
        raise lexer.error(f"unknown entity &{name};")
