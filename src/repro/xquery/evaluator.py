"""The XQuery evaluator: AST + context -> sequence.

Evaluation is a straightforward tree walk.  Sequences are Python lists;
path steps re-establish document order and remove duplicates after every
step, as the XPath semantics require.  FLWOR expressions are evaluated as
tuple streams of immutable child contexts.
"""

from __future__ import annotations

import functools
import math

from ..errors import XQueryEvalError, XQueryTypeError
from ..faults.deadline import checkpoint as _deadline_checkpoint
from ..obs.recorder import count as _obs_count
from ..obs.recorder import plan as _obs_plan
from ..xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    Text,
    document_order,
)
from ..xml.summary import fast_descendant_elements
from . import ast
from .context import Context
from .functions import lookup
from .items import (
    XSDate,
    atomize,
    atomize_item,
    cast_value,
    compare_values,
    effective_boolean,
    is_numeric,
    string_value,
    to_number,
)


def evaluate(expression: object, context: Context) -> list:
    """Evaluate ``expression`` in ``context``, returning a sequence.

    Under EXPLAIN ANALYZE each AST-node evaluation becomes a merged plan
    node (``xquery.FLWOR``, ``xquery.PathExpr``, …) carrying inclusive
    wall-time, call counts and output cardinality; without a profiler
    the dispatch is untouched.
    """
    _deadline_checkpoint()
    node_type = type(expression)
    handler = _HANDLERS.get(node_type)
    if handler is None:
        raise XQueryEvalError(f"no evaluator for {node_type.__name__}")
    profiler = _obs_plan()
    if profiler is None:
        return handler(expression, context)
    with profiler.node("xquery." + node_type.__name__) as plan_node:
        result = handler(expression, context)
        plan_node.add(rows_out=len(result))
    return result


# -- primaries -------------------------------------------------------------

def _eval_literal(node: ast.Literal, context: Context) -> list:
    return [node.value]


def _eval_varref(node: ast.VarRef, context: Context) -> list:
    return list(context.variable(node.name))


def _eval_context_item(node: ast.ContextItem, context: Context) -> list:
    return [context.require_item()]


def _eval_sequence(node: ast.Sequence, context: Context) -> list:
    out: list = []
    for item in node.items:
        out.extend(evaluate(item, context))
    return out


def _eval_range(node: ast.RangeExpr, context: Context) -> list:
    start = _single_number(evaluate(node.start, context), "range start")
    end = _single_number(evaluate(node.end, context), "range end")
    if start is None or end is None:
        return []
    return list(range(int(start), int(end) + 1))


def _single_number(sequence: list, what: str) -> float | None:
    if not sequence:
        return None
    if len(sequence) > 1:
        raise XQueryTypeError(f"{what}: more than one item")
    return to_number(atomize_item(sequence[0]))


# -- arithmetic / logic ------------------------------------------------------

def _eval_binary(node: ast.BinaryOp, context: Context) -> list:
    if node.op == "union":
        left = evaluate(node.left, context)
        right = evaluate(node.right, context)
        for item in left + right:
            if not isinstance(item, Node):
                raise XQueryTypeError("union operands must be nodes")
        return document_order(left + right)

    if node.op == "||":
        left = evaluate(node.left, context)
        right = evaluate(node.right, context)
        return [_string_of(left) + _string_of(right)]

    left_num = _single_number(evaluate(node.left, context), "arithmetic")
    if left_num is None:
        return []
    right_num = _single_number(evaluate(node.right, context), "arithmetic")
    if right_num is None:
        return []
    if math.isnan(left_num) or math.isnan(right_num):
        return [float("nan")]

    op = node.op
    try:
        if op == "+":
            result = left_num + right_num
        elif op == "-":
            result = left_num - right_num
        elif op == "*":
            result = left_num * right_num
        elif op == "div":
            result = left_num / right_num
        elif op == "idiv":
            result = math.trunc(left_num / right_num)
        elif op == "mod":
            result = math.fmod(left_num, right_num)
        else:
            raise XQueryEvalError(f"unknown operator {op!r}")
    except ZeroDivisionError:
        raise XQueryEvalError("division by zero") from None

    if op in ("+", "-", "*", "mod") and float(result).is_integer() \
            and abs(result) < 1e15:
        return [int(result)]
    if op == "idiv":
        return [int(result)]
    return [result]


def _string_of(sequence: list) -> str:
    if not sequence:
        return ""
    if len(sequence) > 1:
        raise XQueryTypeError("'||' operand has more than one item")
    return string_value(sequence[0])


def _eval_unary(node: ast.UnaryOp, context: Context) -> list:
    value = _single_number(evaluate(node.operand, context), "unary")
    if value is None:
        return []
    result = -value if node.op == "-" else value
    if float(result).is_integer() and abs(result) < 1e15:
        return [int(result)]
    return [result]


def _eval_comparison(node: ast.Comparison, context: Context) -> list:
    left = evaluate(node.left, context)
    right = evaluate(node.right, context)
    op = node.op

    if op in ("is", "<<", ">>"):
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1 \
                or not isinstance(left[0], Node) \
                or not isinstance(right[0], Node):
            raise XQueryTypeError("node comparison requires single nodes")
        if op == "is":
            return [left[0] is right[0]]
        if op == "<<":
            return [left[0].order_key < right[0].order_key]
        return [left[0].order_key > right[0].order_key]

    if op in ("=", "!=", "<", "<=", ">", ">="):
        left_atoms = atomize(left)
        right_atoms = atomize(right)
        for left_atom in left_atoms:
            for right_atom in right_atoms:
                if compare_values(op, left_atom, right_atom):
                    return [True]
        return [False]

    # Value comparisons: empty operand -> empty result.
    if not left or not right:
        return []
    if len(left) > 1 or len(right) > 1:
        raise XQueryTypeError(
            f"value comparison {op!r} over multi-item sequence")
    return [compare_values(op, atomize_item(left[0]),
                           atomize_item(right[0]))]


def _eval_andor(node: ast.AndOr, context: Context) -> list:
    left = effective_boolean(evaluate(node.left, context))
    if node.op == "and":
        if not left:
            return [False]
        return [effective_boolean(evaluate(node.right, context))]
    if left:
        return [True]
    return [effective_boolean(evaluate(node.right, context))]


def _eval_quantified(node: ast.Quantified, context: Context) -> list:
    def recurse(bindings: list, ctx: Context) -> bool:
        if not bindings:
            return effective_boolean(evaluate(node.condition, ctx))
        (var, expr), rest = bindings[0], bindings[1:]
        sequence = evaluate(expr, ctx)
        if node.quantifier == "some":
            return any(recurse(rest, ctx.bind(var, [item]))
                       for item in sequence)
        return all(recurse(rest, ctx.bind(var, [item]))
                   for item in sequence)

    return [recurse(node.bindings, context)]


def _eval_if(node: ast.IfExpr, context: Context) -> list:
    if effective_boolean(evaluate(node.condition, context)):
        return evaluate(node.then_branch, context)
    return evaluate(node.else_branch, context)


# -- FLWOR ----------------------------------------------------------------------

def _eval_flwor(node: ast.FLWOR, context: Context) -> list:
    tuples: list[Context] = [context]
    for clause in node.clauses:
        if isinstance(clause, ast.ForClause):
            expanded: list[Context] = []
            for tup in tuples:
                sequence = evaluate(clause.expr, tup)
                for position, item in enumerate(sequence, start=1):
                    bound = tup.bind(clause.var, [item])
                    if clause.position_var:
                        bound = bound.bind(clause.position_var, [position])
                    expanded.append(bound)
            tuples = expanded
        elif isinstance(clause, ast.WhereClause):
            tuples = [tup for tup in tuples
                      if effective_boolean(evaluate(clause.expr, tup))]
        else:
            tuples = [tup.bind(clause.var, evaluate(clause.expr, tup))
                      for tup in tuples]

    if node.where is not None:
        tuples = [tup for tup in tuples
                  if effective_boolean(evaluate(node.where, tup))]

    if node.order_by:
        tuples = _order_tuples(tuples, node.order_by)

    out: list = []
    for tup in tuples:
        out.extend(evaluate(node.return_expr, tup))
    return out


def _order_tuples(tuples: list[Context],
                  specs: list[ast.OrderSpec]) -> list[Context]:
    decorated = []
    for tup in tuples:
        keys = []
        for spec in specs:
            sequence = atomize(evaluate(spec.expr, tup))
            if len(sequence) > 1:
                raise XQueryTypeError("order by key has more than one item")
            keys.append(sequence[0] if sequence else None)
        decorated.append((keys, tup))

    def compare(left: tuple, right: tuple) -> int:
        for spec, left_key, right_key in zip(specs, left[0], right[0]):
            result = _compare_keys(left_key, right_key, spec)
            if result:
                return result
        return 0

    decorated.sort(key=functools.cmp_to_key(compare))
    return [tup for _, tup in decorated]


def _compare_keys(left: object, right: object, spec: ast.OrderSpec) -> int:
    if left is None and right is None:
        return 0
    if left is None:
        result = -1 if spec.empty_least else 1
        return result if not spec.descending else result
    if right is None:
        result = 1 if spec.empty_least else -1
        return result if not spec.descending else result
    if compare_values("=", left, right):
        return 0
    less = compare_values("<", left, right)
    result = -1 if less else 1
    return -result if spec.descending else result


# -- paths --------------------------------------------------------------------------

def _eval_path(node: ast.PathExpr, context: Context) -> list:
    steps = _fuse_descendant_steps(node.steps)
    if node.absolute:
        item = context.require_item()
        if not isinstance(item, Node):
            raise XQueryTypeError("'/' requires a node context item")
        current: list = [item.root()]
        remaining = steps
    else:
        current = _eval_step(steps[0], [None], context, initial=True)
        remaining = steps[1:]

    for step in remaining:
        current = _eval_step(step, current, context, initial=False)
    return current


def _fuse_descendant_steps(steps: list) -> list:
    """Fuse ``descendant-or-self::node()/child::T`` pairs (the ``//``
    shorthand) into a single ``descendant::T`` step.

    For any node test T the two are equivalent — every descendant is a
    child of some member of the or-self set — as long as neither step
    carries predicates (a positional predicate on the child step groups
    per parent, which fusion would break).  The fused step avoids
    materializing the entire subtree and, for named tests, is answered
    straight from the document's tag map.
    """
    fused: list = []
    index = 0
    total = len(steps)
    while index < total:
        step = steps[index]
        if (isinstance(step, ast.AxisStep)
                and step.axis == "descendant-or-self"
                and step.test == "node()" and not step.predicates
                and index + 1 < total):
            nxt = steps[index + 1]
            if (isinstance(nxt, ast.AxisStep) and nxt.axis == "child"
                    and not nxt.predicates):
                fused.append(ast.AxisStep("descendant", nxt.test))
                index += 2
                continue
        fused.append(step)
        index += 1
    return fused


def _eval_step(step: object, input_sequence: list, context: Context,
               initial: bool) -> list:
    results: list = []
    any_node = False
    any_atom = False

    if initial:
        # First step of a relative path: evaluated against the outer focus.
        if isinstance(step, ast.AxisStep):
            item = context.require_item()
            if not isinstance(item, Node):
                raise XQueryTypeError("path step requires a node context")
            selected = _axis_nodes(item, step)
            results.extend(_apply_step_predicates(selected, step, context))
            any_node = True
        else:
            results = evaluate(step, context)
            any_node = any(isinstance(i, Node) for i in results)
            any_atom = any(not isinstance(i, Node) for i in results)
    else:
        size = len(input_sequence)
        for position, item in enumerate(input_sequence, start=1):
            if isinstance(step, ast.AxisStep):
                if not isinstance(item, Node):
                    raise XQueryTypeError(
                        "path step applied to an atomic value")
                selected = _axis_nodes(item, step)
                results.extend(
                    _apply_step_predicates(selected, step, context))
                any_node = True
            else:
                focused = context.focus(item, position, size)
                part = evaluate(step, focused)
                any_node = any_node or any(isinstance(i, Node)
                                           for i in part)
                any_atom = any_atom or any(not isinstance(i, Node)
                                           for i in part)
                results.extend(part)

    if any_node and any_atom:
        raise XQueryTypeError(
            "path step mixes nodes and atomic values")
    if any_node:
        return document_order(results)
    return results


def _apply_step_predicates(nodes: list, step: ast.AxisStep,
                           context: Context) -> list:
    _obs_count("xquery.nodes_visited", len(nodes))
    current = nodes
    for predicate in step.predicates:
        current = _filter_by_predicate(current, predicate, context)
    profiler = _obs_plan()
    if profiler is not None:
        profiler.leaf("xquery.step", rows_in=len(nodes),
                      rows_out=len(current), axis=step.axis,
                      test=step.test)
    return current


def _filter_by_predicate(sequence: list, predicate: object,
                         context: Context) -> list:
    _obs_count("xquery.predicate_evals", len(sequence))
    kept: list = []
    size = len(sequence)
    for position, item in enumerate(sequence, start=1):
        focused = context.focus(item, position, size)
        result = evaluate(predicate, focused)
        if len(result) == 1 and is_numeric(result[0]):
            if float(result[0]) == position:
                kept.append(item)
        elif effective_boolean(result):
            kept.append(item)
    return kept


def _axis_nodes(node: Node, step: ast.AxisStep) -> list:
    axis, test = step.axis, step.test
    if axis == "child":
        return [child for child in _children_of(node)
                if _matches(child, test)]
    if axis == "descendant":
        fast = _fast_descendants(node, test)
        if fast is not None:
            return fast
        return [desc for desc in _descendants_of(node)
                if _matches(desc, test)]
    if axis == "descendant-or-self":
        fast = _fast_descendants(node, test)
        if fast is not None:
            if _matches(node, test):
                return [node] + fast
            return fast
        out = [node] if _matches(node, test) else []
        out.extend(desc for desc in _descendants_of(node)
                   if _matches(desc, test))
        return out
    if axis == "attribute":
        if not isinstance(node, Element):
            return []
        if test == "*":
            return list(node.attributes.values())
        attr = node.attributes.get(test)
        return [attr] if attr is not None else []
    if axis == "self":
        return [node] if _matches(node, test) else []
    if axis == "parent":
        parent = node.parent
        if parent is None:
            return []
        return [parent] if _matches(parent, test) else []
    raise XQueryEvalError(f"unsupported axis {axis!r}")


def _children_of(node: Node) -> list:
    if isinstance(node, (Element, Document)):
        return node.children
    return []


def _fast_descendants(node: Node, test: str) -> list | None:
    """Tag-map shortcut for named descendant tests; None -> tree walk.

    Only plain element-name tests qualify (kind tests and ``*`` must
    see text/comment nodes the summary doesn't track), and only for
    nodes attached to a document.
    """
    if test == "*" or test.endswith(")"):
        return None
    fast = fast_descendant_elements(node, test)
    if fast is not None:
        _obs_count("xquery.tagmap_hits")
    return fast


def _descendants_of(node: Node) -> list:
    out: list = []

    def visit(parent: Node) -> None:
        for child in _children_of(parent):
            out.append(child)
            visit(child)

    visit(node)
    return out


def _matches(node: Node, test: str) -> bool:
    if test == "node()":
        return True
    if test == "text()":
        return isinstance(node, Text)
    if test == "comment()":
        return isinstance(node, Comment)
    if test == "element()":
        return isinstance(node, Element)
    if test == "*":
        return isinstance(node, (Element, Attribute))
    if isinstance(node, Element):
        return node.tag == test
    if isinstance(node, Attribute):
        return node.name == test
    return False


def _eval_filter(node: ast.Filter, context: Context) -> list:
    sequence = evaluate(node.base, context)
    for predicate in node.predicates:
        sequence = _filter_by_predicate(sequence, predicate, context)
    return sequence


# -- functions -------------------------------------------------------------------------

def _eval_function_call(node: ast.FunctionCall, context: Context) -> list:
    impl, min_args, max_args = lookup(node.name)
    count = len(node.args)
    if count < min_args or (max_args is not None and count > max_args):
        raise XQueryEvalError(
            f"{node.name}() called with {count} arguments "
            f"(expects {min_args}"
            + (f"..{max_args}" if max_args != min_args else "") + ")")
    args = [evaluate(arg, context) for arg in node.args]
    return impl(context, *args)


# -- constructors ------------------------------------------------------------------------

def _eval_element_constructor(node: ast.ElementConstructor,
                              context: Context) -> list:
    element = Element(node.tag)
    for name, parts in node.attributes:
        element.set_attribute(name, _attr_value(parts, context))
    _append_content(element, node.content, context)
    _assign_local_order(element)
    return [element]


def _attr_value(parts: list, context: Context) -> str:
    chunks: list[str] = []
    for part in parts:
        if isinstance(part, str):
            chunks.append(part)
        else:
            sequence = evaluate(part, context)
            chunks.append(" ".join(string_value(item)
                                   for item in atomize(sequence)))
    return "".join(chunks)


def _append_content(element: Element, parts: list,
                    context: Context) -> None:
    for index, part in enumerate(parts):
        if isinstance(part, str):
            # Boundary whitespace (whitespace-only literal text) is
            # stripped, matching XQuery's default declaration.
            if part.strip() or not _is_boundary(parts, index):
                element.append_text(part)
        elif isinstance(part, ast.ElementConstructor):
            child = _eval_element_constructor(part, context)[0]
            element.append(child)
        else:
            sequence = evaluate(part, context)
            pending_atoms: list[str] = []
            for item in sequence:
                if isinstance(item, Node):
                    if pending_atoms:
                        element.append_text(" ".join(pending_atoms))
                        pending_atoms = []
                    _append_copy(element, item)
                else:
                    pending_atoms.append(string_value(item))
            if pending_atoms:
                element.append_text(" ".join(pending_atoms))


def _is_boundary(parts: list, index: int) -> bool:
    """Whitespace text adjacent to non-text parts (or the edges)."""
    previous_is_text = index > 0 and isinstance(parts[index - 1], str)
    next_is_text = (index + 1 < len(parts)
                    and isinstance(parts[index + 1], str))
    return not (previous_is_text and next_is_text)


def _append_copy(element: Element, item: Node) -> None:
    if isinstance(item, Document):
        _append_copy(element, item.root_element)
    elif isinstance(item, Element):
        element.append(copy_element(item))
    elif isinstance(item, Text):
        element.append_text(item.text)
    elif isinstance(item, Attribute):
        element.set_attribute(item.name, item.value)
    elif isinstance(item, Comment):
        element.append(Comment(item.text))


def copy_element(source: Element) -> Element:
    """Deep-copy an element subtree (constructor content copy semantics)."""
    clone = Element(source.tag)
    for name, attr in source.attributes.items():
        clone.set_attribute(name, attr.value)
    for child in source.children:
        if isinstance(child, Element):
            clone.append(copy_element(child))
        elif isinstance(child, Text):
            clone.append_text(child.text)
        elif isinstance(child, Comment):
            clone.append(Comment(child.text))
    return clone


def _assign_local_order(element: Element) -> None:
    """Give a constructed tree usable document-order keys."""
    counter = 0

    def visit(node: Element) -> None:
        nonlocal counter
        node.order_key = counter
        counter += 1
        for attr in node.attributes.values():
            attr.order_key = counter
            counter += 1
        for child in node.children:
            if isinstance(child, Element):
                visit(child)
            else:
                child.order_key = counter
                counter += 1

    visit(element)


def _eval_attribute_constructor(node: ast.AttributeConstructor,
                                context: Context) -> list:
    return [Attribute(node.name, _attr_value(node.parts, context))]


def _computed_name(name: object, context: Context) -> str:
    if isinstance(name, str):
        return name
    sequence = evaluate(name, context)
    if len(sequence) != 1:
        raise XQueryTypeError(
            "computed constructor name must be a single item")
    return string_value(atomize_item(sequence[0]))


def _eval_computed_element(node: ast.ComputedElementConstructor,
                           context: Context) -> list:
    element = Element(_computed_name(node.name, context))
    if node.content is not None:
        _append_content(element, [node.content], context)
    # Attribute nodes produced by the content expression were attached
    # by _append_content; assign order keys for navigability.
    _assign_local_order(element)
    return [element]


def _eval_computed_attribute(node: ast.ComputedAttributeConstructor,
                             context: Context) -> list:
    value = ""
    if node.value is not None:
        sequence = evaluate(node.value, context)
        value = " ".join(string_value(item)
                         for item in atomize(sequence))
    return [Attribute(_computed_name(node.name, context), value)]


def _eval_text_constructor(node: ast.TextConstructor,
                           context: Context) -> list:
    if node.value is None:
        return []
    sequence = evaluate(node.value, context)
    if not sequence:
        return []
    return [Text(" ".join(string_value(item)
                          for item in atomize(sequence)))]


def _eval_cast(node: ast.CastExpr, context: Context) -> list:
    sequence = evaluate(node.expr, context)
    if not sequence:
        return []
    if len(sequence) > 1:
        raise XQueryTypeError("cast over a multi-item sequence")
    return [cast_value(atomize_item(sequence[0]), node.type_name)]


_HANDLERS = {
    ast.Literal: _eval_literal,
    ast.VarRef: _eval_varref,
    ast.ContextItem: _eval_context_item,
    ast.Sequence: _eval_sequence,
    ast.RangeExpr: _eval_range,
    ast.BinaryOp: _eval_binary,
    ast.UnaryOp: _eval_unary,
    ast.Comparison: _eval_comparison,
    ast.AndOr: _eval_andor,
    ast.Quantified: _eval_quantified,
    ast.IfExpr: _eval_if,
    ast.FLWOR: _eval_flwor,
    ast.PathExpr: _eval_path,
    ast.Filter: _eval_filter,
    ast.FunctionCall: _eval_function_call,
    ast.ElementConstructor: _eval_element_constructor,
    ast.AttributeConstructor: _eval_attribute_constructor,
    ast.ComputedElementConstructor: _eval_computed_element,
    ast.ComputedAttributeConstructor: _eval_computed_attribute,
    ast.TextConstructor: _eval_text_constructor,
    ast.CastExpr: _eval_cast,
}
