"""Token kinds for the XQuery lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kind constants.  Keywords are not reserved in XQuery, so the lexer
# emits every name as NAME and the parser interprets keywords contextually.
NAME = "name"                  # foo, xs:integer, fn:count
VARIABLE = "variable"          # $x  (value is the name without '$')
STRING = "string"              # "..."/'...' literal (value is decoded text)
INTEGER = "integer"
DECIMAL = "decimal"
SYMBOL = "symbol"              # punctuation / operator, value is the lexeme
TAG_START = "tag_start"        # '<name' beginning a direct constructor
EOF = "eof"

# Multi-character symbols, longest first so the lexer matches greedily.
SYMBOLS = [
    "::", "<<", ">>", "!=", "<=", ">=", ":=", "//", "..", "||",
    "(", ")", "[", "]", "{", "}", ",", ";", "=", "<", ">", "|",
    "+", "-", "*", "/", "@", "$", ".", "?",
]


@dataclass
class Token:
    """A single lexical token with its source offset."""

    kind: str
    value: str
    position: int

    def is_symbol(self, *lexemes: str) -> bool:
        return self.kind == SYMBOL and self.value in lexemes

    def is_name(self, *names: str) -> bool:
        return self.kind == NAME and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.position})"
