"""AST node classes for the XQuery subset.

Plain dataclasses; the evaluator dispatches on type.  The subset covers the
functionality the XBench workload exercises (FLWOR, quantifiers, paths with
predicates, constructors, comparisons, arithmetic, casts, conditionals and
function calls) — i.e. the XQuery Use Cases surface the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

Expr = Union[
    "Literal", "VarRef", "ContextItem", "Sequence", "RangeExpr",
    "BinaryOp", "UnaryOp", "Comparison", "AndOr", "Quantified", "IfExpr",
    "FLWOR", "PathExpr", "AxisStep", "Filter", "FunctionCall",
    "ElementConstructor", "AttributeConstructor", "CastExpr",
]


@dataclass
class Literal:
    """A string or numeric literal."""

    value: object


@dataclass
class VarRef:
    """``$name``."""

    name: str


@dataclass
class ContextItem:
    """``.``"""


@dataclass
class Sequence:
    """Comma expression / parenthesized sequence: ``(e1, e2, ...)``."""

    items: list


@dataclass
class RangeExpr:
    """``start to end`` integer range."""

    start: object
    end: object


@dataclass
class BinaryOp:
    """Arithmetic or union: op in {+,-,*,div,idiv,mod,union}."""

    op: str
    left: object
    right: object


@dataclass
class UnaryOp:
    """Unary ``+``/``-``."""

    op: str
    operand: object


@dataclass
class Comparison:
    """General (=, !=, <...), value (eq, ne...) or node (is, <<, >>)."""

    op: str
    left: object
    right: object


@dataclass
class AndOr:
    """``and`` / ``or`` with short-circuit semantics."""

    op: str
    left: object
    right: object


@dataclass
class Quantified:
    """``some/every $v in e (, $v2 in e2)* satisfies cond``."""

    quantifier: str                      # "some" | "every"
    bindings: list                       # [(var_name, expr), ...]
    condition: object = None


@dataclass
class IfExpr:
    """``if (cond) then a else b``."""

    condition: object
    then_branch: object
    else_branch: object


@dataclass
class ForClause:
    """One variable binding of a ``for`` clause."""

    var: str
    expr: object
    position_var: Optional[str] = None   # "at $i"


@dataclass
class LetClause:
    """One variable binding of a ``let`` clause."""

    var: str
    expr: object


@dataclass
class WhereClause:
    """An interleaved ``where`` filter inside the clause list."""

    expr: object


@dataclass
class OrderSpec:
    """One key of an ``order by`` clause."""

    expr: object
    descending: bool = False
    empty_least: bool = True


@dataclass
class FLWOR:
    """A FLWOR expression.

    ``clauses`` interleaves For/Let/Where in source order (interleaved
    ``for``-after-``where`` is accepted, as in XQuery 3.0 and the XBench
    query set).  ``where`` holds a trailing where clause, if any.
    """

    clauses: list                        # list[ForClause|LetClause|WhereClause]
    where: Optional[object] = None
    order_by: list = field(default_factory=list)   # list[OrderSpec]
    return_expr: object = None


@dataclass
class AxisStep:
    """One path step: axis + node test + predicates.

    ``axis`` is one of child, descendant, descendant-or-self, attribute,
    self, parent.  ``test`` is an element/attribute name, ``*`` for any, or
    one of the kind tests ``text()``, ``node()``.
    """

    axis: str
    test: str
    predicates: list = field(default_factory=list)


@dataclass
class PathExpr:
    """A path: optional root anchor plus a list of steps.

    ``absolute`` True means the path starts at ``/`` (document root of the
    context node).  Steps are AxisStep or arbitrary expressions (for
    primary-expression steps like ``$doc/a`` — the first step may be any
    expression whose result is then navigated).
    """

    steps: list
    absolute: bool = False


@dataclass
class Filter:
    """A primary expression with predicates: ``expr[pred]...``."""

    base: object
    predicates: list


@dataclass
class FunctionCall:
    """``name(args...)`` — built-in function application."""

    name: str
    args: list


@dataclass
class ElementConstructor:
    """Direct element constructor ``<tag attr="...">content</tag>``.

    ``attributes`` maps attribute names to lists of parts; ``content`` is a
    list of parts.  A part is either a ``str`` (fixed text) or an expression
    to evaluate and splice.
    """

    tag: str
    attributes: list                     # [(name, [parts...]), ...]
    content: list                        # [str | Expr, ...]


@dataclass
class AttributeConstructor:
    """Computed attribute constructor (used by transforming queries)."""

    name: str
    parts: list


@dataclass
class ComputedElementConstructor:
    """``element name { content }`` / ``element { name-expr } { content }``."""

    name: object                         # str, or an expression
    content: object                      # expression or None


@dataclass
class ComputedAttributeConstructor:
    """``attribute name { value }`` with a computed value."""

    name: object                         # str, or an expression
    value: object


@dataclass
class TextConstructor:
    """``text { expr }``."""

    value: object


@dataclass
class CastExpr:
    """``expr cast as xs:type`` (also used for ``xs:type(expr)`` calls)."""

    expr: object
    type_name: str
