"""XQuery substrate: lexer, parser, evaluator and the engine facade."""

from .context import Context, DocumentProvider, EmptyProvider
from .engine import CompiledQuery, StaticCollection, XQueryEngine, run_query
from .items import XSDate, atomize, effective_boolean, string_value
from .parser import parse_query

__all__ = [
    "Context",
    "DocumentProvider",
    "EmptyProvider",
    "CompiledQuery",
    "StaticCollection",
    "XQueryEngine",
    "run_query",
    "XSDate",
    "atomize",
    "effective_boolean",
    "string_value",
    "parse_query",
]
