"""Built-in function library (the ``fn:`` namespace, prefix optional).

Each implementation receives the dynamic :class:`~repro.xquery.context.Context`
followed by one evaluated sequence per argument, and returns a sequence.
Arity is checked by the evaluator against the registry entries.
"""

from __future__ import annotations

import math
import re

from ..errors import XQueryEvalError, XQueryTypeError
from ..xml.nodes import Attribute, Document, Element, Node
from .context import Context
from .items import (
    atomize,
    atomize_item,
    effective_boolean,
    is_numeric,
    sequence_string,
    string_value,
    to_number,
)

# name -> (callable, min_args, max_args); max_args None means variadic.
REGISTRY: dict[str, tuple] = {}


def register(name: str, min_args: int, max_args: int | None):
    """Class decorator registering a function implementation."""

    def wrap(func):
        REGISTRY[name] = (func, min_args, max_args)
        return func

    return wrap


def _single_string(sequence: list, function: str) -> str:
    """Coerce a 0/1-item sequence to a string argument."""
    if not sequence:
        return ""
    if len(sequence) > 1:
        raise XQueryTypeError(
            f"{function}() expects at most one item, got {len(sequence)}")
    return string_value(sequence[0])


def _numeric_items(sequence: list, function: str) -> list[float]:
    values = []
    for item in atomize(sequence):
        number = to_number(item)
        if math.isnan(number):
            raise XQueryTypeError(
                f"{function}(): non-numeric value {item!r}")
        values.append(number)
    return values


def _as_int(value: float) -> object:
    """Collapse floats that are whole numbers back to int for clean output."""
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 1e15:
        return int(value)
    return value


# -- aggregates ------------------------------------------------------------

@register("count", 1, 1)
def fn_count(context: Context, sequence: list) -> list:
    return [len(sequence)]


@register("sum", 1, 2)
def fn_sum(context: Context, sequence: list, *zero: list) -> list:
    if not sequence:
        return list(zero[0]) if zero else [0]
    return [_as_int(math.fsum(_numeric_items(sequence, "sum")))]


@register("avg", 1, 1)
def fn_avg(context: Context, sequence: list) -> list:
    if not sequence:
        return []
    values = _numeric_items(sequence, "avg")
    return [math.fsum(values) / len(values)]


@register("min", 1, 1)
def fn_min(context: Context, sequence: list) -> list:
    if not sequence:
        return []
    atoms = atomize(sequence)
    if all(isinstance(a, str) for a in atoms):
        return [min(atoms)]
    return [_as_int(min(_numeric_items(sequence, "min")))]


@register("max", 1, 1)
def fn_max(context: Context, sequence: list) -> list:
    if not sequence:
        return []
    atoms = atomize(sequence)
    if all(isinstance(a, str) for a in atoms):
        return [max(atoms)]
    return [_as_int(max(_numeric_items(sequence, "max")))]


# -- string functions ---------------------------------------------------------

@register("string", 0, 1)
def fn_string(context: Context, *args: list) -> list:
    if args:
        return [_single_string(args[0], "string")]
    return [string_value(context.require_item())]


@register("concat", 2, None)
def fn_concat(context: Context, *args: list) -> list:
    return ["".join(_single_string(arg, "concat") for arg in args)]


@register("string-join", 1, 2)
def fn_string_join(context: Context, sequence: list, *sep: list) -> list:
    separator = _single_string(sep[0], "string-join") if sep else ""
    return [separator.join(string_value(item) for item in sequence)]


@register("string-length", 0, 1)
def fn_string_length(context: Context, *args: list) -> list:
    if args:
        return [len(_single_string(args[0], "string-length"))]
    return [len(string_value(context.require_item()))]


@register("contains", 2, 2)
def fn_contains(context: Context, haystack: list, needle: list) -> list:
    return [_single_string(needle, "contains")
            in _single_string(haystack, "contains")]


@register("starts-with", 2, 2)
def fn_starts_with(context: Context, haystack: list, needle: list) -> list:
    return [_single_string(haystack, "starts-with")
            .startswith(_single_string(needle, "starts-with"))]


@register("ends-with", 2, 2)
def fn_ends_with(context: Context, haystack: list, needle: list) -> list:
    return [_single_string(haystack, "ends-with")
            .endswith(_single_string(needle, "ends-with"))]


@register("substring", 2, 3)
def fn_substring(context: Context, source: list, start: list,
                 *length: list) -> list:
    text = _single_string(source, "substring")
    begin = round(to_number(atomize(start)[0])) if start else 1
    if length:
        count = round(to_number(atomize(length[0])[0]))
        end = begin + count
    else:
        end = len(text) + 1
    begin = max(begin, 1)
    return [text[begin - 1:max(end - 1, 0)]]


@register("substring-before", 2, 2)
def fn_substring_before(context: Context, source: list, sep: list) -> list:
    text = _single_string(source, "substring-before")
    marker = _single_string(sep, "substring-before")
    index = text.find(marker) if marker else -1
    return [text[:index] if index >= 0 else ""]


@register("substring-after", 2, 2)
def fn_substring_after(context: Context, source: list, sep: list) -> list:
    text = _single_string(source, "substring-after")
    marker = _single_string(sep, "substring-after")
    index = text.find(marker) if marker else -1
    return [text[index + len(marker):] if index >= 0 else ""]


@register("normalize-space", 0, 1)
def fn_normalize_space(context: Context, *args: list) -> list:
    if args:
        text = _single_string(args[0], "normalize-space")
    else:
        text = string_value(context.require_item())
    return [" ".join(text.split())]


@register("lower-case", 1, 1)
def fn_lower_case(context: Context, arg: list) -> list:
    return [_single_string(arg, "lower-case").lower()]


@register("upper-case", 1, 1)
def fn_upper_case(context: Context, arg: list) -> list:
    return [_single_string(arg, "upper-case").upper()]


@register("tokenize", 2, 2)
def fn_tokenize(context: Context, source: list, pattern: list) -> list:
    text = _single_string(source, "tokenize")
    if not text:
        return []
    return list(re.split(_single_string(pattern, "tokenize"), text))


@register("matches", 2, 2)
def fn_matches(context: Context, source: list, pattern: list) -> list:
    return [re.search(_single_string(pattern, "matches"),
                      _single_string(source, "matches")) is not None]


@register("replace", 3, 3)
def fn_replace(context: Context, source: list, pattern: list,
               replacement: list) -> list:
    return [re.sub(_single_string(pattern, "replace"),
                   _single_string(replacement, "replace"),
                   _single_string(source, "replace"))]


@register("translate", 3, 3)
def fn_translate(context: Context, source: list, from_chars: list,
                 to_chars: list) -> list:
    src = _single_string(from_chars, "translate")
    dst = _single_string(to_chars, "translate")
    table = {ord(s): (dst[i] if i < len(dst) else None)
             for i, s in enumerate(src)}
    return [_single_string(source, "translate").translate(table)]


# -- numeric -----------------------------------------------------------------

@register("number", 0, 1)
def fn_number(context: Context, *args: list) -> list:
    if args:
        if not args[0]:
            return [float("nan")]
        return [to_number(atomize_item(args[0][0]))]
    return [to_number(atomize_item(context.require_item()))]


@register("round", 1, 1)
def fn_round(context: Context, arg: list) -> list:
    if not arg:
        return []
    value = to_number(atomize_item(arg[0]))
    return [_as_int(math.floor(value + 0.5))]


@register("floor", 1, 1)
def fn_floor(context: Context, arg: list) -> list:
    if not arg:
        return []
    return [_as_int(math.floor(to_number(atomize_item(arg[0]))))]


@register("ceiling", 1, 1)
def fn_ceiling(context: Context, arg: list) -> list:
    if not arg:
        return []
    return [_as_int(math.ceil(to_number(atomize_item(arg[0]))))]


@register("abs", 1, 1)
def fn_abs(context: Context, arg: list) -> list:
    if not arg:
        return []
    return [_as_int(abs(to_number(atomize_item(arg[0]))))]


# -- boolean / sequences ---------------------------------------------------------

@register("boolean", 1, 1)
def fn_boolean(context: Context, arg: list) -> list:
    return [effective_boolean(arg)]


@register("not", 1, 1)
def fn_not(context: Context, arg: list) -> list:
    return [not effective_boolean(arg)]


@register("true", 0, 0)
def fn_true(context: Context) -> list:
    return [True]


@register("false", 0, 0)
def fn_false(context: Context) -> list:
    return [False]


@register("empty", 1, 1)
def fn_empty(context: Context, arg: list) -> list:
    return [not arg]


@register("exists", 1, 1)
def fn_exists(context: Context, arg: list) -> list:
    return [bool(arg)]


@register("distinct-values", 1, 1)
def fn_distinct_values(context: Context, arg: list) -> list:
    seen: set = set()
    out: list = []
    for atom in atomize(arg):
        key = (type(atom).__name__, atom) if not is_numeric(atom) \
            else ("num", float(atom))
        if key not in seen:
            seen.add(key)
            out.append(atom)
    return out


@register("reverse", 1, 1)
def fn_reverse(context: Context, arg: list) -> list:
    return list(reversed(arg))


@register("index-of", 2, 2)
def fn_index_of(context: Context, sequence: list, target: list) -> list:
    if len(target) != 1:
        raise XQueryTypeError("index-of() needs exactly one search item")
    wanted = atomize_item(target[0])
    out = []
    for position, item in enumerate(atomize(sequence), start=1):
        if is_numeric(item) and is_numeric(wanted):
            if float(item) == float(wanted):
                out.append(position)
        elif item == wanted:
            out.append(position)
    return out


@register("subsequence", 2, 3)
def fn_subsequence(context: Context, sequence: list, start: list,
                   *length: list) -> list:
    begin = round(to_number(atomize_item(start[0])))
    if length:
        count = round(to_number(atomize_item(length[0][0])))
        return sequence[max(begin - 1, 0):begin - 1 + count]
    return sequence[max(begin - 1, 0):]


@register("zero-or-one", 1, 1)
def fn_zero_or_one(context: Context, arg: list) -> list:
    if len(arg) > 1:
        raise XQueryTypeError("zero-or-one(): more than one item")
    return arg


@register("exactly-one", 1, 1)
def fn_exactly_one(context: Context, arg: list) -> list:
    if len(arg) != 1:
        raise XQueryTypeError(
            f"exactly-one(): sequence has {len(arg)} items")
    return arg


@register("one-or-more", 1, 1)
def fn_one_or_more(context: Context, arg: list) -> list:
    if not arg:
        raise XQueryTypeError("one-or-more(): empty sequence")
    return arg


@register("data", 1, 1)
def fn_data(context: Context, arg: list) -> list:
    return atomize(arg)


@register("insert-before", 3, 3)
def fn_insert_before(context: Context, sequence: list, position: list,
                     inserts: list) -> list:
    index = max(int(to_number(atomize_item(position[0]))) - 1, 0)
    return sequence[:index] + list(inserts) + sequence[index:]


@register("remove", 2, 2)
def fn_remove(context: Context, sequence: list, position: list) -> list:
    index = int(to_number(atomize_item(position[0])))
    if index < 1 or index > len(sequence):
        return list(sequence)
    return sequence[:index - 1] + sequence[index:]


@register("compare", 2, 2)
def fn_compare(context: Context, left: list, right: list) -> list:
    if not left or not right:
        return []
    first = _single_string(left, "compare")
    second = _single_string(right, "compare")
    return [(first > second) - (first < second)]


@register("string-to-codepoints", 1, 1)
def fn_string_to_codepoints(context: Context, arg: list) -> list:
    return [ord(char) for char in _single_string(arg,
                                                 "string-to-codepoints")]


@register("codepoints-to-string", 1, 1)
def fn_codepoints_to_string(context: Context, arg: list) -> list:
    try:
        return ["".join(chr(int(to_number(atomize_item(item))))
                        for item in arg)]
    except (ValueError, OverflowError):
        raise XQueryEvalError(
            "codepoints-to-string: invalid codepoint") from None


# -- date components (used by windowed workload variants) ------------------------

def _date_of(arg: list, function: str):
    from .items import XSDate
    if not arg:
        return None
    value = atomize_item(arg[0])
    if isinstance(value, XSDate):
        return value
    return XSDate.parse(str(value))


@register("year-from-date", 1, 1)
def fn_year_from_date(context: Context, arg: list) -> list:
    date = _date_of(arg, "year-from-date")
    return [] if date is None else [date.year]


@register("month-from-date", 1, 1)
def fn_month_from_date(context: Context, arg: list) -> list:
    date = _date_of(arg, "month-from-date")
    return [] if date is None else [date.month]


@register("day-from-date", 1, 1)
def fn_day_from_date(context: Context, arg: list) -> list:
    date = _date_of(arg, "day-from-date")
    return [] if date is None else [date.day]


# -- focus / node functions --------------------------------------------------------

@register("position", 0, 0)
def fn_position(context: Context) -> list:
    return [context.position]


@register("last", 0, 0)
def fn_last(context: Context) -> list:
    return [context.size]


@register("name", 0, 1)
def fn_name(context: Context, *args: list) -> list:
    node = args[0][0] if args and args[0] else (None if args
                                                else context.require_item())
    if node is None:
        return [""]
    if isinstance(node, Element):
        return [node.tag]
    if isinstance(node, Attribute):
        return [node.name]
    return [""]


@register("local-name", 0, 1)
def fn_local_name(context: Context, *args: list) -> list:
    name = fn_name(context, *args)[0]
    return [name.split(":")[-1] if name else ""]


@register("root", 0, 1)
def fn_root(context: Context, *args: list) -> list:
    if args:
        if not args[0]:
            return []
        node = args[0][0]
    else:
        node = context.require_item()
    if not isinstance(node, Node):
        raise XQueryTypeError("root() requires a node")
    return [node.root()]


@register("deep-equal", 2, 2)
def fn_deep_equal(context: Context, left: list, right: list) -> list:
    from .items import deep_equal
    if len(left) != len(right):
        return [False]
    return [all(deep_equal(a, b) for a, b in zip(left, right))]


# -- document access -----------------------------------------------------------------

@register("doc", 1, 1)
def fn_doc(context: Context, name: list) -> list:
    document_name = _single_string(name, "doc")
    try:
        return [context.provider.doc(document_name)]
    except KeyError:
        raise XQueryEvalError(
            f"document {document_name!r} not found") from None


@register("document", 1, 1)
def fn_document(context: Context, name: list) -> list:
    return fn_doc(context, name)


@register("collection", 0, 1)
def fn_collection(context: Context, *name: list) -> list:
    collection_name = _single_string(name[0], "collection") if name else None
    return list(context.provider.collection(collection_name))


@register("input", 0, 0)
def fn_input(context: Context) -> list:
    """XBench queries use input() for 'the database' (Kweelt heritage)."""
    return list(context.provider.collection(None))


def lookup(name: str) -> tuple:
    """Resolve a function name to (impl, min_args, max_args)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise XQueryEvalError(f"unknown function {name}()") from None


def _document_or_node(item: object) -> Node:
    if isinstance(item, Document):
        return item.root_element
    if isinstance(item, Node):
        return item
    raise XQueryTypeError("expected a node")
