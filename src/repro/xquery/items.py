"""XDM value model: atomic items, atomization, effective boolean value.

A *sequence* is a plain Python list.  An *item* is either a node from
:mod:`repro.xml.nodes` or an atomic value: ``str``, ``int``, ``float``,
``bool`` or :class:`XSDate`.  The helpers here implement the handful of
XPath/XQuery semantics that everything else builds on: atomization,
effective boolean value, numeric promotion and value comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import total_ordering

from ..errors import XQueryEvalError, XQueryTypeError
from ..xml.nodes import Attribute, Document, Element, Node, Text


@total_ordering
@dataclass(frozen=True)
class XSDate:
    """An ``xs:date`` value (the workload's non-string sort key, Q11)."""

    year: int
    month: int
    day: int

    @classmethod
    def parse(cls, text: str) -> "XSDate":
        """Parse ``YYYY-MM-DD`` (leading/trailing whitespace tolerated)."""
        parts = text.strip().split("-")
        if len(parts) != 3:
            raise XQueryEvalError(f"cannot cast {text!r} to xs:date")
        try:
            year, month, day = (int(part) for part in parts)
        except ValueError:
            raise XQueryEvalError(f"cannot cast {text!r} to xs:date") from None
        if not (1 <= month <= 12 and 1 <= day <= 31):
            raise XQueryEvalError(f"invalid xs:date {text!r}")
        return cls(year, month, day)

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}-{self.day:02d}"

    def __lt__(self, other: "XSDate") -> bool:
        if not isinstance(other, XSDate):
            return NotImplemented
        return ((self.year, self.month, self.day)
                < (other.year, other.month, other.day))


def is_node(item: object) -> bool:
    """True if ``item`` is an XML node."""
    return isinstance(item, Node)


def atomize_item(item: object) -> object:
    """Atomize one item: nodes become their (untyped) string value."""
    if isinstance(item, Node):
        return item.string_value()
    return item


def atomize(sequence: list) -> list:
    """Atomize a sequence item-wise."""
    return [atomize_item(item) for item in sequence]


def string_value(item: object) -> str:
    """The string form of one item (fn:string on a single item)."""
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        if item == math.floor(item) and abs(item) < 1e15 and not math.isinf(item):
            return str(int(item))
        return repr(item)
    return str(item)


def sequence_string(sequence: list, separator: str = " ") -> str:
    """String form of a whole sequence (used by constructors)."""
    return separator.join(string_value(item) for item in sequence)


def effective_boolean(sequence: list) -> bool:
    """The effective boolean value of a sequence (XPath 2.0 rules)."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, Node):
        return True
    if len(sequence) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, str):
        return len(first) > 0
    if isinstance(first, (int, float)):
        return first != 0 and not (isinstance(first, float)
                                   and math.isnan(first))
    if isinstance(first, XSDate):
        raise XQueryTypeError("xs:date has no effective boolean value")
    raise XQueryTypeError(
        f"no effective boolean value for {type(first).__name__}")


def to_number(value: object) -> float:
    """Cast an atomic value to xs:double (fn:number semantics)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Node):
        value = value.string_value()
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return float("nan")
    return float("nan")


def is_numeric(value: object) -> bool:
    """True for int/float (bool excluded: it is not an XDM numeric)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(op: str, left: object, right: object) -> bool:
    """Value comparison of two atomic items with weak typing.

    Untyped (string) data is promoted to the other operand's type, per the
    XQuery rules for untypedAtomic.  Two strings compare as strings by
    codepoint; dates compare chronologically; numbers numerically.
    """
    if isinstance(left, Node):
        left = left.string_value()
    if isinstance(right, Node):
        right = right.string_value()

    if is_numeric(left) or is_numeric(right):
        left_num, right_num = to_number(left), to_number(right)
        if math.isnan(left_num) or math.isnan(right_num):
            return op == "!=" or op == "ne"
        left, right = left_num, right_num
    elif isinstance(left, XSDate) or isinstance(right, XSDate):
        if isinstance(left, str):
            left = XSDate.parse(left)
        if isinstance(right, str):
            right = XSDate.parse(right)
    elif isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, str):
            left = _parse_boolean(left)
        if isinstance(right, str):
            right = _parse_boolean(right)

    if op in ("=", "eq"):
        return left == right
    if op in ("!=", "ne"):
        return left != right
    if op in ("<", "lt"):
        return left < right
    if op in ("<=", "le"):
        return left <= right
    if op in (">", "gt"):
        return left > right
    if op in (">=", "ge"):
        return left >= right
    raise XQueryEvalError(f"unknown comparison operator {op!r}")


def _parse_boolean(text: str) -> bool:
    text = text.strip()
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise XQueryEvalError(f"cannot cast {text!r} to xs:boolean")


def cast_value(value: object, type_name: str) -> object:
    """Cast one atomic value to the named ``xs:`` type."""
    if isinstance(value, Node):
        value = value.string_value()
    base = type_name.split(":")[-1]
    try:
        if base in ("integer", "int", "long", "short"):
            if isinstance(value, float):
                return int(value)
            return int(str(value).strip())
        if base in ("decimal", "double", "float"):
            return float(str(value).strip()) if isinstance(value, str) \
                else float(value)
        if base == "string":
            return string_value(value)
        if base == "boolean":
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return value != 0
            return _parse_boolean(str(value))
        if base == "date":
            if isinstance(value, XSDate):
                return value
            return XSDate.parse(str(value))
    except (ValueError, XQueryEvalError) as exc:
        raise XQueryEvalError(
            f"cannot cast {value!r} to xs:{base}: {exc}") from None
    raise XQueryEvalError(f"unsupported cast target xs:{base}")


def deep_equal(left: object, right: object) -> bool:
    """Structural equality of two items (fn:deep-equal on single items)."""
    if isinstance(left, Node) != isinstance(right, Node):
        return False
    if not isinstance(left, Node):
        return compare_values("=", left, right)
    if isinstance(left, Element) and isinstance(right, Element):
        if left.tag != right.tag:
            return False
        left_attrs = {k: a.value for k, a in left.attributes.items()}
        right_attrs = {k: a.value for k, a in right.attributes.items()}
        if left_attrs != right_attrs:
            return False
        left_kids = [c for c in left.children if not _ignorable(c)]
        right_kids = [c for c in right.children if not _ignorable(c)]
        if len(left_kids) != len(right_kids):
            return False
        return all(deep_equal(a, b) for a, b in zip(left_kids, right_kids))
    if isinstance(left, Text) and isinstance(right, Text):
        return left.text == right.text
    if isinstance(left, Attribute) and isinstance(right, Attribute):
        return left.name == right.name and left.value == right.value
    if isinstance(left, Document) and isinstance(right, Document):
        return deep_equal(left.root_element, right.root_element)
    return False


def _ignorable(node: Node) -> bool:
    return isinstance(node, Text) and not node.text.strip()
