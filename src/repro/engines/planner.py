"""Index-aware query planning for the native engine.

Replaces the hand-written per-query acceleration table: given a compiled
query's AST, the engine's declared value indexes (Table 3 paths) and the
collection's structural path summaries, :class:`QueryPlanner` derives an
:class:`IndexProbePlan` — "probe index X with $param, then evaluate this
residual expression from each probed node" — for *any* eligible query,
or a :class:`ScanPlan` carrying the human-readable reason it declined.

Eligibility rules (see ``docs/indexing.md``):

1. The query is an absolute path, or a FLWOR whose first clause binds a
   variable over an absolute path.  ``collection()``-anchored queries
   are never eligible: visiting every document is the architectural
   cost the multi-document classes are supposed to pay.
2. The steps before the anchor are plain child steps with literal name
   tests and no predicates.
3. The anchor step carries exactly one equality predicate comparing a
   child element or attribute against a variable or literal, and a
   declared value index covers that element/attribute path.
4. The path summary confirms the probed tag occurs *only* at the
   query's prefix path — otherwise an index probe would return nodes
   the path expression would never have reached.

The residual is spliced together from the original AST (never unparsed
text): the steps after the anchor become a relative path evaluated with
each probed node as the context item; element-value indexes yield the
value-carrying child, so their residuals start with a parent step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

from ..xquery import ast


@dataclass
class IndexProbePlan:
    """Probe a value index, then run a residual expression per node."""

    index_path: str               # declared index, e.g. "item/@id" or "hw"
    param: Optional[str]          # $param supplying the probe value, or ...
    literal: Optional[object]     # ... a literal probe value
    residual: object              # AST run with each probed node as context
    residual_desc: str            # rendering of the residual, for explain
    anchor_path: str              # root-relative path of the anchored nodes
    reason: str                   # why the planner chose this index

    @property
    def probe_desc(self) -> str:
        source = f"${self.param}" if self.param is not None \
            else repr(self.literal)
        return f"{self.index_path} = {source}"


@dataclass
class ScanPlan:
    """No index applies; fall back to full (collection) evaluation."""

    reason: str


Plan = Union[IndexProbePlan, ScanPlan]


@dataclass
class _Probe:
    """Internal: a matched anchor before residual construction."""

    index_path: str
    param: Optional[str]
    literal: Optional[object]
    residual_steps: list
    anchor_path: str
    reason: str


class QueryPlanner:
    """Derives index-probe plans from query ASTs.

    ``summaries`` is a zero-argument callable returning the structural
    summaries of the loaded documents; it is only invoked once a
    candidate index has been found (so ``collection()`` queries never
    pay for summary construction).
    """

    def __init__(self, index_paths: Iterable[str],
                 summaries: Callable[[], list]) -> None:
        self._index_paths = list(index_paths)
        self._summaries = summaries

    def plan(self, expression: object) -> Plan:
        if isinstance(expression, ast.FLWOR):
            return self._plan_flwor(expression)
        if isinstance(expression, ast.PathExpr):
            probe = self._find_probe(expression)
            if isinstance(probe, ScanPlan):
                return probe
            residual, desc = _residual_expression(probe.residual_steps)
            return IndexProbePlan(
                index_path=probe.index_path, param=probe.param,
                literal=probe.literal, residual=residual,
                residual_desc=desc, anchor_path=probe.anchor_path,
                reason=probe.reason)
        return ScanPlan("not a path or FLWOR expression")

    def _plan_flwor(self, flwor: ast.FLWOR) -> Plan:
        if not flwor.clauses or not isinstance(flwor.clauses[0],
                                               ast.ForClause):
            return ScanPlan("FLWOR does not start with a for clause")
        first = flwor.clauses[0]
        if not isinstance(first.expr, ast.PathExpr):
            return ScanPlan("first for clause is not bound to a path")
        probe = self._find_probe(first.expr)
        if isinstance(probe, ScanPlan):
            return probe
        residual, desc = _residual_expression(probe.residual_steps)
        rewritten = ast.FLWOR(
            clauses=[ast.ForClause(first.var, residual,
                                   first.position_var)]
            + list(flwor.clauses[1:]),
            where=flwor.where, order_by=flwor.order_by,
            return_expr=flwor.return_expr)
        return IndexProbePlan(
            index_path=probe.index_path, param=probe.param,
            literal=probe.literal, residual=rewritten,
            residual_desc=f"for ${first.var} in {desc} ...",
            anchor_path=probe.anchor_path, reason=probe.reason)

    # -- anchor detection -------------------------------------------------

    def _find_probe(self, path: ast.PathExpr) -> Union[_Probe, ScanPlan]:
        if not path.absolute:
            first = path.steps[0] if path.steps else None
            if isinstance(first, ast.FunctionCall) \
                    and first.name in ("collection", "input"):
                return ScanPlan("collection() query: every document "
                                "must be visited")
            return ScanPlan("relative path: no stable root anchor")
        prefix: list[str] = []
        for position, step in enumerate(path.steps):
            if not isinstance(step, ast.AxisStep):
                return ScanPlan("non-step expression in path prefix")
            if step.axis != "child":
                return ScanPlan(f"{step.axis} axis before any "
                                "indexable predicate")
            if step.test == "*" or step.test.endswith(")"):
                return ScanPlan("wildcard or kind test before any "
                                "indexable predicate")
            prefix.append(step.test)
            if step.predicates:
                return self._match_anchor(step, prefix,
                                          path.steps[position + 1:])
        return ScanPlan("no predicate to probe an index with")

    def _match_anchor(self, step: ast.AxisStep, prefix: list[str],
                      rest: list) -> Union[_Probe, ScanPlan]:
        if len(step.predicates) != 1:
            return ScanPlan("anchor step has multiple predicates")
        predicate = step.predicates[0]
        if not isinstance(predicate, ast.Comparison):
            return ScanPlan("anchor predicate is not a comparison")
        if predicate.op in ("<", "<=", ">", ">=", "lt", "le", "gt",
                            "ge"):
            return ScanPlan("range predicate: value indexes are hash "
                            "maps with no key order")
        if predicate.op not in ("=", "eq"):
            return ScanPlan(
                f"unsupported comparison {predicate.op!r}")
        if not isinstance(predicate.right, (ast.VarRef, ast.Literal)):
            return ScanPlan("probe value is neither a parameter nor "
                            "a literal")
        operand = _unwrap_operand(predicate.left)
        if operand is None:
            return ScanPlan("predicate operand is not a one-step "
                            "child or attribute path")
        param = predicate.right.name \
            if isinstance(predicate.right, ast.VarRef) else None
        literal = predicate.right.value \
            if isinstance(predicate.right, ast.Literal) else None
        anchor_path = "/".join(prefix)

        if operand.axis == "attribute":
            index_path = f"{step.test}/@{operand.test}"
            if index_path not in self._index_paths:
                return ScanPlan(f"no declared index on {index_path}")
            exclusive = self._paths_exclusive(step.test, anchor_path)
            if exclusive is not None:
                return exclusive
            return _Probe(
                index_path=index_path, param=param, literal=literal,
                residual_steps=list(rest), anchor_path=anchor_path,
                reason=f"equality on @{operand.test} of "
                       f"/{anchor_path} matches index {index_path}")

        # Element-value predicate ([hw = $word]): the index holds the
        # value-carrying child; the residual steps up to the anchor.
        child_tag = operand.test
        value_path = anchor_path + "/" + child_tag
        index_path = self._element_index_for(child_tag, value_path)
        if index_path is None:
            return ScanPlan(f"no declared index on {value_path}")
        exclusive = self._paths_exclusive(child_tag, value_path)
        if exclusive is not None:
            return exclusive
        residual_steps = [ast.AxisStep("parent", "node()")] + list(rest)
        return _Probe(
            index_path=index_path, param=param, literal=literal,
            residual_steps=residual_steps, anchor_path=anchor_path,
            reason=f"equality on child {child_tag} of /{anchor_path} "
                   f"matches index {index_path}")

    def _element_index_for(self, tag: str,
                           value_path: str) -> Optional[str]:
        """A declared element-value index covering ``value_path``."""
        value_segments = value_path.split("/")
        for declared in self._index_paths:
            if "/@" in declared:
                continue
            if "/" not in declared:
                if declared == tag:
                    return declared
                continue
            segments = declared.split("/")
            if len(value_segments) >= len(segments) \
                    and value_segments[-len(segments):] == segments:
                return declared
        return None

    def _paths_exclusive(self, tag: str,
                         path: str) -> Optional[ScanPlan]:
        """None if ``tag`` occurs only at ``path`` across the collection,
        else a ScanPlan explaining the over-match risk."""
        summaries = self._summaries()
        if not summaries:
            return ScanPlan("empty collection: nothing to probe")
        occurrences: set[str] = set()
        for summary in summaries:
            occurrences.update(summary.paths_of(tag))
        if not occurrences:
            return ScanPlan(f"tag {tag} does not occur in the "
                            "collection")
        strays = occurrences - {path}
        if strays:
            return ScanPlan(
                f"tag {tag} also occurs at {sorted(strays)}: an index "
                "probe would over-match the path")
        return None


# -- residual construction -------------------------------------------------

def _unwrap_operand(operand: object) -> Optional[ast.AxisStep]:
    """The single child/attribute AxisStep of a predicate operand."""
    if isinstance(operand, ast.PathExpr) and not operand.absolute \
            and len(operand.steps) == 1:
        operand = operand.steps[0]
    if isinstance(operand, ast.AxisStep) and not operand.predicates \
            and operand.axis in ("child", "attribute") \
            and operand.test != "*" and not operand.test.endswith(")"):
        return operand
    return None


def _residual_expression(steps: list) -> tuple[object, str]:
    """Relative AST (plus a rendering) for the post-anchor steps."""
    if not steps:
        return ast.ContextItem(), "."
    return ast.PathExpr(list(steps), absolute=False), \
        "/".join(_render_step(step) for step in steps)


def _render_step(step: object) -> str:
    if not isinstance(step, ast.AxisStep):
        return "<expr>"
    if step.axis == "parent" and step.test == "node()":
        return ".."
    prefix = "@" if step.axis == "attribute" else ""
    suffix = "[...]" * len(step.predicates)
    if step.axis == "descendant-or-self" and step.test == "node()":
        return ""        # renders "//" via the joining slash
    return f"{prefix}{step.test}{suffix}"
