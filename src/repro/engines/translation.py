"""Hand-translated relational plans for the experiment queries.

The paper converts the XQuery workload into SQL by hand for DB2 and SQL
Server ("the query translations ... were done by us").  This module plays
that role for the shredded stores: for each (query, database class) pair
used in the performance experiments it provides a plan over the shredded
tables, composed from :mod:`repro.relstore` operators.

Plans return result strings shaped like the native engine's output so the
driver can cross-check correctness.  Where the mapping loses information
(document order, mixed content) the plan returns what the relational
database can know — reproducing the paper's caveat that these engines "do
not guarantee correctness" on order- and structure-sensitive queries.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..xml.nodes import Element
from ..xml.serializer import serialize
from .shredding import ShreddedStore

Plan = Callable[[ShreddedStore, dict], list[str]]

#: (qid, class_key) -> plan
PLANS: dict[tuple[str, str], Plan] = {}


def plan(qid: str, class_key: str):
    """Register a translated plan."""

    def wrap(func: Plan) -> Plan:
        PLANS[(qid, class_key)] = func
        return func

    return wrap


def has_plan(qid: str, class_key: str) -> bool:
    return (qid, class_key) in PLANS


def run_plan(store: ShreddedStore, qid: str, class_key: str,
             params: dict) -> list[str]:
    return PLANS[(qid, class_key)](store, params)


# -- helpers ---------------------------------------------------------------

def element_str(tag: str, value: object) -> str:
    """Serialize ``<tag>value</tag>`` the way the native engine would."""
    element = Element(tag)
    if value is not None and str(value) != "":
        element.append_text(str(value))
    return serialize(element)


def _children(store: ShreddedStore, table: str, parent_id: int) -> list[dict]:
    """Child record rows in insertion (hence document) order."""
    return list(store.database.lookup(table, "parent_id", parent_id))


def _first_child(store: ShreddedStore, table: str,
                 parent_id: int) -> Optional[dict]:
    rows = _children(store, table, parent_id)
    return rows[0] if rows else None


def _by_id(store: ShreddedStore, table: str, record_id: int) -> dict:
    rows = list(store.database.lookup(table, "id", record_id))
    return rows[0]


def _ancestor_row(store: ShreddedStore, row: dict,
                  target_table: str) -> Optional[dict]:
    """Walk parent_id links until a row of ``target_table`` is reached."""
    current = row
    while True:
        parent_id = current.get("parent_id")
        if parent_id is None:
            return None
        owner = store.owner_table.get(parent_id)
        if owner is None:
            return None
        current = _by_id(store, owner, parent_id)
        if owner == target_table:
            return current


def _build_element(tag: str, parts: list[tuple[str, object]]) -> Element:
    """Assemble an element from (tag, value) leaf pairs, skipping NULLs."""
    element = Element(tag)
    for child_tag, value in parts:
        if value is not None:
            element.append_element(child_tag, text=str(value))
    return element


def _in_window(value: object, low: str, high: str) -> bool:
    return value is not None and low <= str(value) <= high


def _reconstruct_record(store: ShreddedStore, root_tag: str,
                        table_name: str, row: dict) -> str:
    """Serialize the rebuilt subtree of one record row."""
    plan = store.plans[root_tag]
    record = next(record for record in plan.records
                  if record.table_name == table_name)
    return serialize(store.reconstruct(plan, record, row))


# ===========================================================================
# Q1 - exact match, shallow (full record reconstruction)
# ===========================================================================

@plan("Q1", "dcsd")
def q1_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    return [_reconstruct_record(store, "catalog", "item", item)
            for item in store.database.lookup("item", "id_c",
                                              str(params["id"]))]


@plan("Q1", "dcmd")
def q1_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    return [_reconstruct_record(store, "order", "order", order)
            for order in store.database.lookup("order", "id_c",
                                               str(params["id"]))]


# ===========================================================================
# Q2 - exact match, deep (author-name filter)
# ===========================================================================

@plan("Q2", "tcmd")
def q2_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    author_name = str(params["author"])
    article_ids = sorted({
        author["parent_id"]
        for author in store.database.scan("author")
        if author["name_last_name"] == author_name})
    return [element_str("title",
                        _by_id(store, "article", aid)["prolog_title"])
            for aid in article_ids]


@plan("Q2", "dcsd")
def q2_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    author_name = str(params["author"])
    item_ids = sorted({author["parent_id"]
                       for author in store.database.scan("author")
                       if author["name_last_name"] == author_name})
    return [element_str("title", _by_id(store, "item", iid)["title"])
            for iid in item_ids]


# ===========================================================================
# Q3 - aggregates (GROUP BY ship type)
# ===========================================================================

@plan("Q3", "dcmd")
def q3_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    counts: dict[str, int] = {}
    for order in store.database.scan("order"):
        ship_type = order["shipping_information_ship_type"]
        if ship_type is not None:
            counts[ship_type] = counts.get(ship_type, 0) + 1
    out = []
    for ship_type in sorted(counts):
        group = Element("group")
        group.append_element("ship_type", text=ship_type)
        group.append_element("total", text=str(counts[ship_type]))
        out.append(serialize(group))
    return out


# ===========================================================================
# Q4 - relative ordered access (sec following 'Introduction')
# ===========================================================================

@plan("Q4", "tcmd")
def q4_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    author_name = str(params["author"])
    article_ids = sorted({author["parent_id"]
                          for author in store.database.scan("author")
                          if author["name_last_name"] == author_name})
    out = []
    for article_id in article_ids:
        # Top-level sections only (parent is the article row), relying
        # on insertion order for document order, as the paper notes the
        # shredders must.
        sections = [sec for sec in
                    _children(store, "sec", article_id)]
        for position, section in enumerate(sections[:-1]):
            if section.get("heading") == "Introduction":
                following = sections[position + 1]
                if following.get("heading") is not None:
                    out.append(element_str("heading",
                                           following["heading"]))
    return out


# ===========================================================================
# Q6 - existential quantification (two keywords in one paragraph)
# ===========================================================================

@plan("Q6", "tcmd")
def q6_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    first, second = str(params["kw1"]), str(params["kw2"])
    matched: set[int] = set()
    for paragraph in store.database.scan("p_t"):
        content = paragraph["content"]
        if content is not None and first in content \
                and second in content:
            article = _ancestor_row(store, paragraph, "article")
            if article is not None:
                matched.add(article["id"])
    return [element_str("title",
                        _by_id(store, "article", aid)["prolog_title"])
            for aid in sorted(matched)]


# ===========================================================================
# Q7 - universal quantification (all authors from country Z)
# ===========================================================================

@plan("Q7", "dcsd")
def q7_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    country = str(params["country"])
    column = "contact_information_mailing_address_country_name"
    # Group the author rows by item, then test the ALL condition.
    authors_by_item: dict[int, list] = {}
    for author in store.database.scan("author"):
        authors_by_item.setdefault(author["parent_id"],
                                   []).append(author[column])
    out = []
    for item in store.database.scan("item"):
        countries = authors_by_item.get(item["id"], [])
        if countries and all(value == country for value in countries):
            out.append(element_str("title", item["title"]))
    return out


# ===========================================================================
# Q11 - sorting on a non-string key (quotation dates)
# ===========================================================================

@plan("Q11", "tcsd")
def q11_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    quotes = []
    for entry in store.database.lookup("entry", "hw", params["word"]):
        for definition in _children(store, "definition", entry["id"]):
            for quote in _children(store, "quote", definition["id"]):
                if quote["date"] is not None:
                    quotes.append(quote)
    # ISO dates sort chronologically as strings; secondary key keeps
    # the sort stable in document order like the XQuery semantics.
    quotes.sort(key=lambda quote: (quote["date"], quote["id"]))
    out = []
    for quote in quotes:
        result = Element("quotation")
        if quote["author"] is not None:
            result.append_element("author", text=quote["author"])
        result.append_element("date", text=quote["date"])
        out.append(serialize(result))
    return out


# ===========================================================================
# Q13 - transforming construction (article summary)
# ===========================================================================

@plan("Q13", "tcmd")
def q13_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for article in store.database.lookup("article", "id_c",
                                         str(params["id"])):
        summary = Element("summary", {"id": str(article["id_c"])})
        summary.append_element("title",
                               text=article["prolog_title"] or "")
        first_author = _first_child(store, "author", article["id"])
        summary.append_element(
            "first_author",
            text=(first_author or {}).get("name_last_name") or "")
        summary.append_element(
            "date", text=article["prolog_date_of_publication"] or "")
        paragraphs = _children(store, "p", article["id"])
        # string(abstract) concatenates descendant text directly.
        summary.append_element(
            "abstract",
            text="".join(p["content"] or "" for p in paragraphs))
        out.append(serialize(summary))
    return out


# ===========================================================================
# Q18 - phrase search over titles and abstracts
# ===========================================================================

@plan("Q18", "tcmd")
def q18_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    phrase = str(params["phrase"])
    matched: set[int] = set()
    for paragraph in store.database.scan("p"):       # abstract paragraphs
        if paragraph["content"] is not None \
                and phrase in paragraph["content"]:
            matched.add(paragraph["parent_id"])
    for paragraph in store.database.scan("p_t"):     # body paragraphs
        if paragraph["content"] is not None \
                and phrase in paragraph["content"]:
            article = _ancestor_row(store, paragraph, "article")
            if article is not None:
                matched.add(article["id"])
    for section in store.database.scan("sec"):
        if section["heading"] is not None \
                and phrase in section["heading"]:
            article = _ancestor_row(store, section, "article")
            if article is not None:
                matched.add(article["id"])
    out = []
    for article_id in sorted(matched):
        article = _by_id(store, "article", article_id)
        result = Element("result")
        if article["prolog_title"] is not None:
            result.append_element("title", text=article["prolog_title"])
        paragraphs = _children(store, "p", article_id)
        if paragraphs:
            abstract = result.append_element("abstract")
            for paragraph in paragraphs:
                abstract.append_element("p",
                                        text=paragraph["content"] or "")
        out.append(serialize(result))
    return out


# ===========================================================================
# Q5 - ordered access (absolute)
# ===========================================================================

@plan("Q5", "dcmd")
def q5_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for order in store.database.lookup("order", "id_c", str(params["id"])):
        line = _first_child(store, "order_line", order["id"])
        if line is not None:
            out.append(element_str("item_id", line["item_id"]))
    return out


@plan("Q5", "dcsd")
def q5_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for item in store.database.lookup("item", "id_c", str(params["id"])):
        author = _first_child(store, "author", item["id"])
        if author is not None:
            out.append(element_str("last_name", author["name_last_name"]))
    return out


@plan("Q5", "tcsd")
def q5_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for entry in store.database.lookup("entry", "hw", params["word"]):
        definition = _first_child(store, "definition", entry["id"])
        if definition is not None:
            out.append(element_str("def_text", definition["def_text"]))
    return out


@plan("Q5", "tcmd")
def q5_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for article in store.database.lookup("article", "id_c",
                                         str(params["id"])):
        section = _first_child(store, "sec", article["id"])
        if section is not None and section.get("heading") is not None:
            out.append(element_str("heading", section["heading"]))
    return out


# ===========================================================================
# Q8 - path expression with one unknown element
# ===========================================================================

@plan("Q8", "tcsd")
def q8_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for entry in store.database.lookup("entry", "hw", params["word"]):
        for definition in _children(store, "definition", entry["id"]):
            for quote in _children(store, "quote", definition["id"]):
                out.append(element_str("qt", quote["qt"]))
    return out


@plan("Q8", "dcsd")
def q8_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    return [element_str("suggested_retail_price",
                        item["pricing_suggested_retail_price"])
            for item in store.database.lookup("item", "id_c",
                                              str(params["id"]))]


@plan("Q8", "dcmd")
def q8_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    return [element_str("ship_type",
                        order["shipping_information_ship_type"])
            for order in store.database.lookup("order", "id_c",
                                               str(params["id"]))]


@plan("Q8", "tcmd")
def q8_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    return [element_str("title", article["prolog_title"])
            for article in store.database.lookup("article", "id_c",
                                                 str(params["id"]))]


# ===========================================================================
# Q9 - path expression, multiple unknown elements
# ===========================================================================

@plan("Q9", "dcmd")
def q9_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    # The unknown intermediate elements vanished during mapping: the
    # status is simply a column of the order row.
    return [element_str(
        "order_status",
        order["shipping_information_delivery_order_status"])
        for order in store.database.lookup("order", "id_c",
                                           str(params["id"]))]


# ===========================================================================
# Q10 - sorting on string keys within a window
# ===========================================================================

@plan("Q10", "dcmd")
def q10_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    low, high = str(params["from"]), str(params["to"])
    matches = [order for order in store.database.scan("order")
               if _in_window(order["order_date"], low, high)]
    matches.sort(key=lambda order: (
        order["shipping_information_ship_type"] or "", order["id"]))
    out = []
    for order in matches:
        summary = Element("order_summary",
                          {"id": str(order["id_c"])})
        summary.append_element("order_date", text=order["order_date"])
        summary.append_element(
            "ship_type", text=order["shipping_information_ship_type"])
        out.append(serialize(summary))
    return out


# ===========================================================================
# Q12 - document construction (requires reconstruction joins)
# ===========================================================================

@plan("Q12", "dcsd")
def q12_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    prefix = "contact_information_mailing_address_"
    for item in store.database.lookup("item", "id_c", str(params["id"])):
        author = _first_child(store, "author", item["id"])
        if author is None:
            continue
        wrapper = Element("address_info")
        mailing = _build_element("mailing_address", [
            ("street1", author[prefix + "street1"]),
            ("street2", author[prefix + "street2"]),
            ("city", author[prefix + "city"]),
            ("state", author[prefix + "state"]),
            ("zip", author[prefix + "zip"]),
        ])
        country = _build_element("country", [
            ("name", author[prefix + "country_name"]),
            ("currency", author[prefix + "country_currency"]),
        ])
        if country.children:
            mailing.append(country)
        wrapper.append(mailing)
        out.append(serialize(wrapper))
    return out


@plan("Q12", "dcmd")
def q12_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    prefix = "billing_information_credit_card_"
    for order in store.database.lookup("order", "id_c", str(params["id"])):
        wrapper = Element("payment_info")
        card = _build_element("credit_card", [
            ("cc_type", order[prefix + "cc_type"]),
            ("cc_number", order[prefix + "cc_number"]),
            ("cc_name", order[prefix + "cc_name"]),
            ("cc_expire", order[prefix + "cc_expire"]),
            ("cc_auth_id", order[prefix + "cc_auth_id"]),
            ("transaction_amount", order[prefix + "transaction_amount"]),
            ("transaction_date", order[prefix + "transaction_date"]),
        ])
        if card.children:
            wrapper.append(card)
        out.append(serialize(wrapper))
    return out


@plan("Q12", "tcsd")
def q12_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for entry in store.database.lookup("entry", "hw", params["word"]):
        wrapper = Element("entry_info")
        for definition in _children(store, "definition", entry["id"]):
            def_element = Element("definition")
            if definition["def_text"] is not None:
                def_element.append_element("def_text",
                                           text=definition["def_text"])
            for quote in _children(store, "quote", definition["id"]):
                quote_element = _build_element("quote", [
                    ("qt", quote["qt"]),
                    ("author", quote["author"]),
                    ("date", quote["date"]),
                    ("location", quote["location"]),
                ])
                def_element.append(quote_element)
            wrapper.append(def_element)
        out.append(serialize(wrapper))
    return out


@plan("Q12", "tcmd")
def q12_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for article in store.database.lookup("article", "id_c",
                                         str(params["id"])):
        wrapper = Element("article_info")
        if article["prolog_title"] is not None:
            wrapper.append_element("title", text=article["prolog_title"])
        paragraphs = _children(store, "p", article["id"])
        if paragraphs:
            abstract = wrapper.append_element("abstract")
            for paragraph in paragraphs:
                abstract.append_element("p", text=paragraph["content"])
        out.append(serialize(wrapper))
    return out


# ===========================================================================
# Q14 - missing elements (table scans, per the paper)
# ===========================================================================

@plan("Q14", "dcsd")
def q14_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    low, high = str(params["from"]), str(params["to"])
    matches = [item for item in
               store.database.range_scan("item", "date_of_release",
                                         low, high)
               if item["publisher_fax"] is None]
    # ORDER BY the item key restores document order before DISTINCT so
    # first-occurrence order matches the XQuery semantics.
    matches.sort(key=lambda item: item["id"])
    seen: set[str] = set()
    out = []
    for item in matches:
        name = item["publisher_name"]
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


@plan("Q14", "dcmd")
def q14_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    low, high = str(params["from"]), str(params["to"])
    out = []
    for order in store.database.scan("order"):
        if _in_window(order["order_date"], low, high) and \
                order["shipping_information_shipping_address_street2"] is None:
            out.append(str(order["id_c"]))
    return out


@plan("Q14", "tcsd")
def q14_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    return [entry["hw"] for entry in store.database.scan("entry")
            if entry["etymology"] is None]


@plan("Q14", "tcmd")
def q14_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    low, high = str(params["from"]), str(params["to"])
    out = []
    for article in store.database.scan("article"):
        if not _in_window(article["prolog_date_of_publication"], low, high):
            continue
        if _first_child(store, "p", article["id"]) is None:
            out.append(article["prolog_title"])
    return out


# ===========================================================================
# Q16 - retrieval of individual documents (full reconstruction)
# ===========================================================================

@plan("Q16", "dcmd")
def q16_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    name = str(params["name"])
    out = []
    for order in store.database.scan("order"):
        if order["doc"] == name:
            out.append(_reconstruct_record(store, "order", "order",
                                           order))
    return out


# ===========================================================================
# Q19 - references and joins (order x flat-translated CUSTOMER)
# ===========================================================================

@plan("Q19", "dcmd")
def q19_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    out = []
    for order in store.database.lookup("order", "id_c",
                                       str(params["id"])):
        customer_id = order["customer_id"]
        for customer in store.database.scan("customer"):
            if customer["c_id"] != customer_id:
                continue
            result = Element("customer_order")
            result.append_element(
                "name",
                text=f"{customer['c_fname']} {customer['c_lname']}")
            result.append_element("phone", text=customer["c_phone"])
            result.append_element(
                "status",
                text=order["shipping_information_delivery_order_status"])
            out.append(serialize(result))
    return out


# ===========================================================================
# Q20 - datatype casting (numeric predicate over a text column)
# ===========================================================================

@plan("Q20", "dcsd")
def q20_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    threshold = int(params["pages"])
    out = []
    for item in store.database.scan("item"):
        pages = item["number_of_pages"]
        if pages is not None and int(pages) > threshold:
            out.append(item["title"])
    return out


# ===========================================================================
# Q17 - uni-gram text search (multi-table LIKE scans + back-joins)
# ===========================================================================

@plan("Q17", "tcsd")
def q17_tcsd(store: ShreddedStore, params: dict) -> list[str]:
    word = str(params["word"])
    matched_entries: set[int] = set()

    def match_text(value: object) -> bool:
        return value is not None and word in str(value)

    for entry in store.database.scan("entry"):
        if any(match_text(entry[column])
               for column in ("hw", "pronunciation", "pos", "etymology")):
            matched_entries.add(entry["id"])
    for definition in store.database.scan("definition"):
        if match_text(definition["def_text"]):
            matched_entries.add(definition["parent_id"])
    for quote in store.database.scan("quote"):
        if any(match_text(quote[column])
               for column in ("qt", "author", "location")):
            definition = _by_id(store, "definition", quote["parent_id"])
            matched_entries.add(definition["parent_id"])
    for emphasis in store.database.scan("emphasis"):
        if match_text(emphasis["content"]):
            quote = _by_id(store, "quote", emphasis["parent_id"])
            definition = _by_id(store, "definition", quote["parent_id"])
            matched_entries.add(definition["parent_id"])

    out = []
    for entry_id in sorted(matched_entries):
        out.append(_by_id(store, "entry", entry_id)["hw"])
    return out


@plan("Q17", "tcmd")
def q17_tcmd(store: ShreddedStore, params: dict) -> list[str]:
    word = str(params["word"])
    matched_articles: set[int] = set()

    def note(row: dict) -> None:
        article = _ancestor_row(store, row, "article")
        if article is not None:
            matched_articles.add(article["id"])

    for section in store.database.scan("sec"):
        if section["heading"] is not None and word in section["heading"]:
            note(section)
    for paragraph in store.database.scan("p_t"):
        if paragraph["content"] is not None \
                and word in paragraph["content"]:
            note(paragraph)
    for citation in store.database.scan("citation"):
        if citation["content"] is not None \
                and word in citation["content"]:
            note(citation)

    out = []
    for article_id in sorted(matched_articles):
        out.append(_by_id(store, "article", article_id)["prolog_title"])
    return out


@plan("Q17", "dcsd")
def q17_dcsd(store: ShreddedStore, params: dict) -> list[str]:
    word = str(params["word"])
    return [item["title"] for item in store.database.scan("item")
            if item["description"] is not None
            and word in item["description"]]


@plan("Q17", "dcmd")
def q17_dcmd(store: ShreddedStore, params: dict) -> list[str]:
    word = str(params["word"])
    matched_orders: set[int] = set()
    for line in store.database.scan("order_line"):
        if line["comments"] is not None and word in line["comments"]:
            matched_orders.add(line["parent_id"])
    out = []
    for order_id in sorted(matched_orders):
        out.append(str(_by_id(store, "order", order_id)["id_c"]))
    return out
