"""DB2 XML Extender in XML-column mode.

Architecture (paper Section 3.1.1): each document is stored intact as a
CLOB in a column of a ``documents`` table; *side tables* hold the values
of searchable elements/attributes declared in the DAD, each row carrying a
``dxx_seqno`` that preserves the ordering of multi-occurrence elements.

Queries select documents through the side tables (relationally cheap) and
either answer straight from side-table values or parse the matching CLOBs
and evaluate XQuery on the intact documents (document reconstruction is
therefore *correct*, unlike the shredding engines).

The 2 GB CLOB ceiling means single-document classes cannot be stored at
all — the paper runs Xcolumn only on DC/MD and TC/MD, and so does this
analogue (:class:`UnsupportedConfiguration` elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..databases.base import DatabaseClass
from ..errors import UnsupportedConfiguration, UnsupportedQuery
from ..obs.recorder import plan as _obs_plan
from ..obs.recorder import plan_node as _obs_plan_node
from ..relstore.database import Database
from ..relstore.table import Column
from ..relstore.types import ColumnType
from ..workload.queries import QUERIES_BY_ID
from ..xml.binary import materialize, payload_text
from ..xml.nodes import Document, Element
from ..xml.parser import parse_document
from ..xquery.engine import StaticCollection, XQueryEngine
from .base import Engine, LoadStats
from .native import normalize_result
from .translation import element_str


@dataclass(frozen=True)
class SideSpec:
    """One DAD-declared searchable element/attribute."""

    root_tag: str          # only documents with this root are extracted
    table: str             # side table name
    path: str              # "@id", "a/b/c", or "a/b/@id"
    whole_subtree: bool = False   # store full text of the subtree


# The DAD for each multi-document class: every element/attribute the
# experiment queries search on.
SIDE_SPECS: dict[str, tuple[SideSpec, ...]] = {
    "dcmd": (
        SideSpec("order", "side_order_id", "@id"),
        SideSpec("order", "side_order_date", "order_date"),
        SideSpec("order", "side_ship_type",
                 "shipping_information/ship_type"),
        SideSpec("order", "side_order_status",
                 "shipping_information/delivery/order_status"),
        SideSpec("order", "side_street2",
                 "shipping_information/shipping_address/street2"),
        SideSpec("order", "side_comments",
                 "order_lines/order_line/comments"),
        SideSpec("order", "side_line_item",
                 "order_lines/order_line/item_id"),
    ),
    "tcmd": (
        SideSpec("article", "side_article_id", "@id"),
        SideSpec("article", "side_pub_date",
                 "prolog/date_of_publication"),
        SideSpec("article", "side_title", "prolog/title"),
        SideSpec("article", "side_heading", "body/sec/heading"),
        SideSpec("article", "side_abstract", "prolog/abstract",
                 whole_subtree=True),
        SideSpec("article", "side_body_text", "body",
                 whole_subtree=True),
    ),
}

# Table 3 index paths -> the side table they land on.
_INDEX_TARGETS = {
    "order/@id": "side_order_id",
    "article/@id": "side_article_id",
}


class XColumnEngine(Engine):
    """Whole-document CLOB storage + DAD side tables."""

    key = "xcolumn"
    row_label = "Xcolumn"
    description = "DB2 XML Extender, XML column (CLOB + side tables)"

    def __init__(self) -> None:
        super().__init__()
        self.database = Database()
        self._xquery = XQueryEngine()
        self._index_paths: list[str] = []
        self._live = False           # post-load: maintain indexes on DML

    # -- configuration gating ------------------------------------------------

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        if db_class.single_document:
            raise UnsupportedConfiguration(
                "DB2 Xcolumn stores each document as one CLOB (2 GB "
                "ceiling); single-document databases cannot be handled "
                "without Text Extender (paper Section 3.1.1)")

    # -- loading ------------------------------------------------------------------

    def bulk_load(self, db_class: DatabaseClass,
                  texts: list[tuple[str, str]]) -> LoadStats:
        self.database = Database()
        self.database.create_table("documents", [
            Column("name", ColumnType.TEXT, nullable=False),
            Column("content", ColumnType.CLOB, nullable=False),
        ])
        specs = SIDE_SPECS.get(db_class.key, ())
        for spec in specs:
            self.database.create_table(spec.table, [
                Column("doc", ColumnType.TEXT, nullable=False),
                Column("value", ColumnType.TEXT),
                Column("dxx_seqno", ColumnType.INTEGER, nullable=False),
            ])

        rows = 0
        documents_table = self.database.table("documents")
        for name, text in texts:
            document = materialize(name, text)
            documents_table.insert({"name": name,
                                    "content": payload_text(text)})
            rows += self._extract_side_rows(document, specs)

        # DB2 builds key indexes on side tables during load.
        self.database.create_index("documents", "name", "hash")
        for spec in specs:
            self.database.create_index(spec.table, "doc", "hash")
        self._live = True
        return LoadStats(rows=rows,
                         notes=[f"{len(specs)} side tables, "
                                f"{rows} side rows"])

    def _extract_side_rows(self, document: Document,
                           specs: tuple[SideSpec, ...]) -> int:
        root = document.root_element
        rows = 0
        for spec in specs:
            if root.tag != spec.root_tag:
                continue
            for seqno, value in enumerate(
                    _extract_values(root, spec), start=1):
                values = {"doc": document.name, "value": value,
                          "dxx_seqno": seqno}
                if self._live:
                    self.database.insert_row(spec.table, values)
                else:
                    self.database.table(spec.table).insert(values)
                rows += 1
        return rows

    def relational_database(self):
        return self.database

    # -- indexes --------------------------------------------------------------------

    def create_indexes(self, paths: list[str]) -> None:
        self._index_paths = list(paths)
        for path in paths:
            table = _INDEX_TARGETS.get(path)
            if table is None:
                raise UnsupportedQuery(
                    f"Xcolumn: no side table for index path {path!r}")
            self.database.create_index(table, "value", "sorted")

    def drop_indexes(self) -> None:
        for path in self._index_paths:
            table = _INDEX_TARGETS.get(path)
            if table is not None:
                self.database.indexes.pop((table, "value"), None)
        self._index_paths = []

    def _release(self) -> None:
        """Drop the CLOB table, the side tables and their indexes."""
        self.database = Database()
        self._index_paths = []
        self._live = False

    # -- query execution ---------------------------------------------------------------

    def execute(self, qid: str, params: dict) -> list[str]:
        self._require_loaded()
        assert self.db_class is not None
        handler = getattr(self, f"_{qid.lower()}_{self.db_class.key}", None)
        if handler is None:
            raise UnsupportedQuery(
                f"Xcolumn: no plan for {qid} on {self.db_class.key}")
        with _obs_plan_node("xcolumn.side_table_plan",
                            handler=handler.__name__) as plan_node:
            values = handler(params)
            plan_node.add(rows_out=len(values))
        return values

    def _docs_with(self, side_table: str, value: str) -> list[str]:
        return [row["doc"] for row in
                self.database.lookup(side_table, "value", value)]

    def _side_values(self, side_table: str, doc: str) -> list[str]:
        rows = sorted(self.database.lookup(side_table, "doc", doc),
                      key=lambda row: row["dxx_seqno"])
        return [row["value"] for row in rows]

    def _parse_clob(self, name: str) -> Document:
        row = next(iter(self.database.lookup("documents", "name", name)))
        profiler = _obs_plan()
        if profiler is not None:
            profiler.leaf("xcolumn.clob_parse", rows_in=1, rows_out=1)
        return parse_document(row["content"], name=name)

    def _evaluate_on_docs(self, qid: str, doc_names: list[str],
                          params: dict) -> list[str]:
        """Parse the selected CLOBs and evaluate the workload XQuery."""
        assert self.db_class is not None
        provider = StaticCollection([self._parse_clob(name)
                                     for name in doc_names])
        text = QUERIES_BY_ID[qid].text_for(self.db_class.key)
        result = self._xquery.execute(text, provider,
                                      variables=dict(params))
        return normalize_result(result)

    # -- update workload -----------------------------------------------------
    #
    # XML Extender updates are document-granular: inserting stores a new
    # CLOB and extracts its side rows; deleting removes the CLOB and its
    # side rows; updating a value rewrites the whole CLOB (there is no
    # in-place editing of a stored column document) and refreshes the
    # side tables.

    def insert_document(self, name: str, text: str) -> None:
        document = materialize(name, text)
        self.database.insert_row("documents",
                                 {"name": name,
                                  "content": payload_text(text)})
        assert self.db_class is not None
        self._extract_side_rows(document,
                                SIDE_SPECS.get(self.db_class.key, ()))

    def delete_document(self, name: str) -> None:
        documents = self.database.table("documents")
        index = self.database.index_for("documents", "name")
        row_ids = index.lookup(name) if index is not None else \
            [row_id for row_id, row in documents.scan()
             if row[documents.offset("name")] == name]
        for row_id in row_ids:
            self.database.delete_row("documents", row_id)
        self._purge_side_rows(name)

    def _purge_side_rows(self, name: str) -> None:
        assert self.db_class is not None
        for spec in SIDE_SPECS.get(self.db_class.key, ()):
            table = self.database.table(spec.table)
            index = self.database.index_for(spec.table, "doc")
            if index is not None:
                victims = index.lookup(name)
            else:
                victims = [row_id for row_id, row in table.scan()
                           if row[table.offset("doc")] == name]
            for row_id in list(victims):
                self.database.delete_row(spec.table, row_id)

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        side_table = _INDEX_TARGETS.get(id_path)
        if side_table is None:
            raise UnsupportedQuery(
                f"Xcolumn: no side table for {id_path!r}")
        changed = 0
        for name in self._docs_with(side_table, str(id_value)):
            document = self._parse_clob(name)
            for element in list(document.root_element.descendant_elements(
                    target_tag)):
                element.children = []
                element.append_text(new_value)
                changed += 1
            # The edits may have removed elements; the side-row refresh
            # below must not reuse a stale structural summary.
            document.invalidate_summary()
            # Rewrite the CLOB and refresh this document's side rows.
            from ..xml.serializer import serialize
            new_text = serialize(document)
            documents = self.database.table("documents")
            index = self.database.index_for("documents", "name")
            for row_id in index.lookup(name):
                documents.update(row_id, "content", new_text)
            self._purge_side_rows(name)
            self._extract_side_rows(document,
                                    SIDE_SPECS.get(self.db_class.key,
                                                   ()))
        return changed

    # Q1/Q16 - whole-document retrieval: Xcolumn's home turf (the CLOB
    # is returned as stored; no reconstruction is ever needed) ---------------

    def _q1_dcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_order_id", str(params["id"])):
            from ..xml.serializer import serialize
            out.append(serialize(self._parse_clob(doc).root_element))
        return out

    def _q16_dcmd(self, params: dict) -> list[str]:
        from ..xml.serializer import serialize
        name = str(params["name"])
        rows = self.database.lookup("documents", "name", name)
        return [serialize(parse_document(row["content"]).root_element)
                for row in rows]

    def _q16_tcmd(self, params: dict) -> list[str]:
        return self._q16_dcmd(params)

    # Q9 - the unknown-path status is a declared searchable element -------

    def _q9_dcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_order_id", str(params["id"])):
            for value in self._side_values("side_order_status", doc):
                out.append(element_str("order_status", value))
        return out

    # Q19 - join against the flat customer document (CLOB parse) -----------

    def _q19_dcmd(self, params: dict) -> list[str]:
        docs = self._docs_with("side_order_id", str(params["id"]))
        return self._evaluate_on_docs("Q19", docs + ["customer.xml"],
                                      params)

    # Q5 -------------------------------------------------------------------

    def _q5_dcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_order_id", str(params["id"])):
            values = self._side_values("side_line_item", doc)
            if values:
                out.append(element_str("item_id", values[0]))
        return out

    def _q5_tcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_article_id", str(params["id"])):
            values = self._side_values("side_heading", doc)
            if values:
                out.append(element_str("heading", values[0]))
        return out

    # Q8 -------------------------------------------------------------------

    def _q8_dcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_order_id", str(params["id"])):
            for value in self._side_values("side_ship_type", doc):
                out.append(element_str("ship_type", value))
        return out

    def _q8_tcmd(self, params: dict) -> list[str]:
        out = []
        for doc in self._docs_with("side_article_id", str(params["id"])):
            for value in self._side_values("side_title", doc):
                out.append(element_str("title", value))
        return out

    # Q12 - reconstruction: parse the intact CLOB (correct results) --------

    def _q12_dcmd(self, params: dict) -> list[str]:
        docs = self._docs_with("side_order_id", str(params["id"]))
        return self._evaluate_on_docs("Q12", docs, params)

    def _q12_tcmd(self, params: dict) -> list[str]:
        docs = self._docs_with("side_article_id", str(params["id"]))
        return self._evaluate_on_docs("Q12", docs, params)

    # Q14 - anti-join on a side table ---------------------------------------

    def _q14_dcmd(self, params: dict) -> list[str]:
        low, high = str(params["from"]), str(params["to"])
        with_street2 = {row["doc"] for row in
                        self.database.scan("side_street2")}
        out = []
        for row in self.database.range_scan("side_order_date", "value",
                                            low, high):
            if row["doc"] in with_street2:
                continue
            ids = self._side_values("side_order_id", row["doc"])
            out.extend(ids)
        return out

    def _q14_tcmd(self, params: dict) -> list[str]:
        low, high = str(params["from"]), str(params["to"])
        with_abstract = {row["doc"] for row in
                         self.database.scan("side_abstract")}
        out = []
        for row in self.database.range_scan("side_pub_date", "value",
                                            low, high):
            if row["doc"] in with_abstract:
                continue
            out.extend(self._side_values("side_title", row["doc"]))
        return out

    # Q17 - LIKE scan over a side table ----------------------------------------

    def _q17_dcmd(self, params: dict) -> list[str]:
        word = str(params["word"])
        docs: list[str] = []
        seen: set[str] = set()
        for row in self.database.scan("side_comments"):
            if row["value"] is not None and word in row["value"] \
                    and row["doc"] not in seen:
                seen.add(row["doc"])
                docs.append(row["doc"])
        out = []
        for doc in docs:
            out.extend(self._side_values("side_order_id", doc))
        return out

    def _q17_tcmd(self, params: dict) -> list[str]:
        word = str(params["word"])
        out = []
        for row in self.database.scan("side_body_text"):
            if row["value"] is not None and word in row["value"]:
                out.extend(self._side_values("side_title", row["doc"]))
        return out


def _extract_values(root: Element, spec: SideSpec) -> list[str]:
    """Evaluate a DAD extraction path against a document root."""
    path = spec.path
    if path.startswith("@"):
        value = root.get(path[1:])
        return [value] if value is not None else []
    if "/@" in path:
        element_path, __, attr = path.partition("/@")
        return [element.get(attr)
                for element in _elements_at(root, element_path)
                if element.get(attr) is not None]
    return [element.text_content()
            for element in _elements_at(root, path)]


def _elements_at(root: Element, path: str) -> list[Element]:
    """Elements at the root-relative child ``path``.

    Attached documents answer from the structural summary's path map
    (one dict lookup per spec instead of a per-level frontier walk);
    detached roots fall back to ``find_all``.
    """
    document = root.parent
    if isinstance(document, Document):
        return document.structural_summary().elements_at_path(
            f"{root.tag}/{path}")
    return list(root.find_all(path))
