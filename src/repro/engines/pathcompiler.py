"""Generic path evaluation over the edge/interval store.

The classic payoff of interval encoding is that *arbitrary* path
expressions can run as structural joins without any schema-specific
translation.  This module compiles the pure-path subset of XQuery
(parsed by :mod:`repro.xquery.parser`) into operations on an
:class:`~repro.engines.edge.EdgeStore`:

* ``child::tag`` — one ``parent_pre`` join per input node;
* ``descendant-or-self::node()/child::tag`` (the ``//`` shorthand) — a
  tag-index fetch filtered by interval containment;
* ``*`` wildcards, ``@attr`` final steps and ``text()``;
* predicates: positional (``[2]``), attribute equality
  (``[@id = $x]``), child-value equality (``[hw = 'word_1']``) and
  existence (``[fax]``), plus ``empty(...)``/``not(...)`` over those.

Anything outside the subset raises :class:`UnsupportedPathError`; the
caller (EdgeEngine) falls back to its handwritten plans.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from ..errors import EngineError
from ..faults.deadline import checkpoint as _deadline_checkpoint
from ..obs.recorder import count as _obs_count
from ..xquery import ast
from ..xquery.parser import parse_query


class UnsupportedPathError(EngineError):
    """The expression falls outside the compilable pure-path subset."""


def compile_path(text: str):
    """Parse and validate a pure path expression; returns the AST."""
    expression = parse_query(text)
    _validate(expression)
    return expression


def _validate(expression) -> None:
    if not isinstance(expression, ast.PathExpr):
        raise UnsupportedPathError(
            f"not a path expression: {type(expression).__name__}")
    steps = list(expression.steps)
    if not expression.absolute:
        first = steps[0]
        if not (isinstance(first, ast.FunctionCall)
                and first.name in ("collection", "input")
                and not first.args):
            raise UnsupportedPathError(
                "relative paths must start with collection()")
        steps = steps[1:]
    for index, step in enumerate(steps):
        if not isinstance(step, ast.AxisStep):
            raise UnsupportedPathError(
                f"unsupported step {type(step).__name__}")
        if step.axis not in ("child", "descendant-or-self",
                             "attribute"):
            raise UnsupportedPathError(
                f"unsupported axis {step.axis!r}")
        if step.axis == "attribute" and index != len(steps) - 1:
            raise UnsupportedPathError("attribute steps must be final")
        for predicate in step.predicates:
            _validate_predicate(predicate)


def _validate_predicate(predicate) -> None:
    if isinstance(predicate, ast.Literal):
        if isinstance(predicate.value, int):
            return
        raise UnsupportedPathError("unsupported literal predicate")
    if isinstance(predicate, ast.Comparison):
        if predicate.op not in ("=", "eq"):
            raise UnsupportedPathError(
                f"unsupported comparison {predicate.op!r}")
        _validate_operand(predicate.left)
        _validate_value(predicate.right)
        return
    if isinstance(predicate, ast.FunctionCall) \
            and predicate.name in ("empty", "exists", "not") \
            and len(predicate.args) == 1:
        _validate_operand(predicate.args[0])
        return
    if isinstance(predicate, ast.PathExpr):
        _validate_operand(predicate)
        return
    raise UnsupportedPathError(
        f"unsupported predicate {type(predicate).__name__}")


def _validate_operand(operand) -> None:
    """A one-step relative path: child tag or @attr."""
    if isinstance(operand, ast.AxisStep):
        if operand.axis in ("child", "attribute") \
                and not operand.predicates:
            return
    if isinstance(operand, ast.PathExpr) and not operand.absolute \
            and len(operand.steps) == 1:
        return _validate_operand(operand.steps[0])
    raise UnsupportedPathError("predicate operand must be a child "
                               "element or attribute test")


def _validate_value(value) -> None:
    if isinstance(value, (ast.Literal, ast.VarRef)):
        return
    raise UnsupportedPathError(
        "predicate value must be a literal or variable")


# -- execution ---------------------------------------------------------------

def run_path(store, text: str, params: dict | None = None) -> list:
    """Compile and execute; returns result items.

    Element results come back as node-row dicts; attribute steps yield
    strings; ``text()`` steps yield the elements' direct text.
    """
    expression = compile_path(text)
    return execute_path(store, expression, params or {})


def execute_path(store, expression: ast.PathExpr,
                 params: dict) -> list:
    steps = list(expression.steps)
    if not expression.absolute:
        steps = steps[1:]                    # drop collection()

    # Roots: every document root element.
    current = [row for row in store.database.scan("nodes")
               if row["parent_pre"] is None]
    current.sort(key=lambda row: row["pre"])

    # The conceptual context is the document node, so the first child
    # step *filters the root elements* instead of descending into them
    # (/dictionary selects the dictionary root, not its children).
    at_document_level = True

    index = 0
    total = len(steps)
    while index < total:
        _deadline_checkpoint()
        step = steps[index]
        if at_document_level and step.axis == "child":
            at_document_level = False
            matched = [row for row in current
                       if step.test == "*" or row["tag"] == step.test]
            current = _apply_predicates(store, matched, step, params)
            index += 1
            continue
        if step.axis == "attribute":
            if index != total - 1:
                raise UnsupportedPathError(
                    "attribute steps must be final")
            return _attribute_values(store, current, step, params)
        if step.test == "text()":
            if index != total - 1:
                raise UnsupportedPathError("text() must be final")
            return [row["text"] or "" for row in current]
        if step.axis == "descendant-or-self":
            next_step = steps[index + 1] if index + 1 < total else None
            if (isinstance(next_step, ast.AxisStep)
                    and next_step.axis == "child"
                    and next_step.test != "*"
                    and not next_step.test.endswith(")")):
                # "//tag": fetch candidates straight from the tag index
                # and keep those inside a context interval, instead of
                # materializing every descendant.  At document level the
                # context is the document node, so a root element with
                # the tag qualifies too (pre == context pre).
                _obs_count("edge.tagindex_probes")
                candidates = store.by_tag(next_step.test)
                contained = _contained_in(candidates, current,
                                          include_self=at_document_level)
                current = _apply_predicates(store, contained, next_step,
                                            params)
                at_document_level = False
                index += 2
                continue
            at_document_level = False
            # generic fallback ("//*", "//text()"): expand to self +
            # all descendants, the next step filters.
            expanded: list = []
            seen: set[int] = set()
            for row in current:
                if row["pre"] not in seen:
                    seen.add(row["pre"])
                    expanded.append(row)
                for descendant in store.descendants(row):
                    if descendant["pre"] not in seen:
                        seen.add(descendant["pre"])
                        expanded.append(descendant)
            expanded.sort(key=lambda row: row["pre"])
            current = expanded
            index += 1
            continue
        at_document_level = False
        # child axis
        next_rows: list = []
        for row in current:
            children = store.children(row["pre"],
                                      None if step.test == "*"
                                      else step.test)
            children = _apply_predicates(store, children, step,
                                         params)
            next_rows.extend(children)
        current = _dedupe(next_rows)
        index += 1
    return current


def _contained_in(candidates: list, context_rows: list,
                  include_self: bool) -> list:
    """Candidate rows inside any context interval, in pre order.

    Subtree intervals are disjoint or nested, so for each candidate it
    suffices to look at the context interval with the largest ``post``
    among those starting at or before the candidate's ``pre`` (a prefix
    maximum over intervals sorted by ``pre``).  A candidate with
    ``cpre < pre < cpost`` is a strict descendant; ``include_self``
    additionally admits ``pre == cpre``.
    """
    if not context_rows or not candidates:
        return []
    intervals = sorted((row["pre"], row["post"]) for row in context_rows)
    pres = [pre for pre, _ in intervals]
    prefix_max_post: list[int] = []
    best = 0
    for _, post in intervals:
        best = max(best, post)
        prefix_max_post.append(best)
    out = []
    for row in sorted(candidates, key=lambda r: r["pre"]):
        pre = row["pre"]
        last = (bisect_right(pres, pre) if include_self
                else bisect_left(pres, pre)) - 1
        if last >= 0 and prefix_max_post[last] > pre:
            out.append(row)
    return out


def _dedupe(rows: list) -> list:
    seen: set[int] = set()
    out = []
    for row in rows:
        if row["pre"] not in seen:
            seen.add(row["pre"])
            out.append(row)
    out.sort(key=lambda row: row["pre"])
    return out


def _attribute_values(store, rows: list, step, params: dict) -> list:
    out = []
    for row in rows:
        for attr in store.attributes_of(row["pre"]):
            if step.test == "*" or attr["name"] == step.test:
                out.append(attr["value"])
    return out


def _apply_predicates(store, rows: list, step, params: dict) -> list:
    current = rows
    for predicate in step.predicates:
        if isinstance(predicate, ast.Literal):
            position = int(predicate.value)
            current = current[position - 1:position] \
                if position >= 1 else []
            continue
        current = [row for row in current
                   if _predicate_holds(store, row, predicate, params)]
    return current


def _predicate_holds(store, row: dict, predicate, params: dict) -> bool:
    if isinstance(predicate, ast.Comparison):
        values = _operand_values(store, row, predicate.left)
        wanted = _resolve_value(predicate.right, params)
        return wanted in values
    if isinstance(predicate, ast.FunctionCall):
        inner = _operand_values(store, row, predicate.args[0])
        if predicate.name in ("empty", "not"):
            return not inner
        return bool(inner)                       # exists
    # bare path predicate: existence
    return bool(_operand_values(store, row, predicate))


def _operand_values(store, row: dict, operand) -> list[str]:
    if isinstance(operand, ast.PathExpr):
        operand = operand.steps[0]
    if operand.axis == "attribute":
        return [attr["value"] for attr in
                store.attributes_of(row["pre"])
                if operand.test == "*" or attr["name"] == operand.test]
    children = store.children(row["pre"],
                              None if operand.test == "*"
                              else operand.test)
    return [child["text"] or "" for child in children]


def _resolve_value(value, params: dict) -> str:
    if isinstance(value, ast.Literal):
        return str(value.value)
    name = value.name
    if name not in params:
        raise EngineError(f"unbound path parameter ${name}")
    return str(params[name])
