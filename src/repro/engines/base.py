"""Common interface of the four DBMS engine analogues.

Engines receive the benchmark's document corpus as *serialized XML text*
(the paper bulk-loads files), so every engine pays the parse cost it would
pay in reality, plus whatever its storage architecture adds: shredding and
key indexes for the relational engines, side-table extraction for Xcolumn,
nothing extra for the native engine.

Load payloads follow the protocol of :mod:`repro.xml.binary`: each
``(name, payload)`` pair carries either XML text (parsed as before) or
an :class:`~repro.xml.binary.EncodedDocument` — a pre-parsed,
struct-packed node array from a snapshot or a shared-memory shard
segment, decoded without touching the parser.  ``len(payload)`` is the
encoded byte size in that case, which is what the byte accounting below
reports.

``execute`` returns a list of result strings (serialized fragments or
atomic values) so results are comparable across engines; the benchmark
driver uses the native engine as the correctness oracle, mirroring the
paper's observation that the relational mappings do not always return
correct results for order- and structure-sensitive queries.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..databases.base import DatabaseClass
from ..errors import BenchmarkError, UnsupportedOperation
from ..faults import plan as _faults
from ..obs import recorder as _obs


@dataclass
class LoadStats:
    """What bulk loading did (returned by :meth:`Engine.bulk_load`)."""

    documents: int = 0
    bytes: int = 0
    rows: int = 0                     # shredded rows / side-table entries
    seconds: float = 0.0
    notes: list[str] = field(default_factory=list)


class _CountingTexts:
    """Wraps a corpus iterable, counting documents/bytes on first pass.

    :meth:`Engine.timed_load` uses this when the corpus has no
    ``total_bytes()`` metadata, so byte accounting happens *during* the
    load pass instead of re-iterating ``texts`` afterwards (which would
    double-read file-backed corpora and exhaust one-shot iterables).
    """

    def __init__(self, texts) -> None:
        self._texts = texts
        self._counted = False
        self.documents = 0
        self.bytes = 0

    def __iter__(self):
        first_pass = not self._counted
        self._counted = True
        for name, text in self._texts:
            if first_pass:
                self.documents += 1
                self.bytes += len(text)
            yield name, text

    def __len__(self) -> int:
        return len(self._texts)

    def __getitem__(self, index):
        return self._texts[index]


@dataclass
class QueryResult:
    """One query execution: normalized result plus timing.

    ``rows_scanned`` counts relational rows touched by sequential scans
    (0 for fully indexed plans; None for engines without a relational
    substrate) — the observability hook behind the index ablation.
    ``counters`` holds the per-query delta of every obs counter that
    moved during execution (None unless a recorder is installed).
    """

    qid: str
    values: list[str]
    seconds: float
    rows_scanned: int | None = None
    counters: dict | None = None


class Engine(ABC):
    """One storage architecture under test."""

    #: programmatic key, e.g. ``"native"``.
    key: str = ""
    #: the paper's row label, e.g. ``"X-Hive"``.
    row_label: str = ""
    #: human description of what the engine emulates.
    description: str = ""
    #: time-to-first-result of the most recent :meth:`execute` call,
    #: when the engine can observe it (the sharded engine stamps the
    #: first shard reply); ``None`` means "same as total elapsed".
    #: Telemetry only — concurrent executors may interleave writes.
    last_ttfr_seconds: float | None = None

    def __init__(self) -> None:
        self.db_class: DatabaseClass | None = None
        self.loaded = False

    # -- configuration gating ------------------------------------------------

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        """Raise :class:`UnsupportedConfiguration` for the paper's
        ``-`` cells.  Default: everything is supported."""

    # -- lifecycle -------------------------------------------------------------

    @abstractmethod
    def bulk_load(self, db_class: DatabaseClass,
                  texts: list[tuple[str, str]]) -> LoadStats:
        """Load a corpus of ``(name, payload)`` pairs (XML text or
        :class:`~repro.xml.binary.EncodedDocument` node arrays)."""

    def close(self) -> None:
        """Release everything the engine holds: document trees,
        relstore tables, value indexes, compiled-query caches and
        structural summaries.  Idempotent; the engine can be reloaded
        with :meth:`bulk_load` afterwards."""
        self._release()
        self.db_class = None
        self.loaded = False

    def _release(self) -> None:
        """Subclass hook behind :meth:`close`: drop storage and caches.

        The default releases nothing; every concrete engine overrides it
        to reset its storage to the freshly-constructed state."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @abstractmethod
    def create_indexes(self, paths: list[str]) -> None:
        """Create the per-class value indexes of the paper's Table 3.

        ``paths`` use the paper's notation, e.g. ``"item/@id"`` or
        ``"hw"``.
        """

    def drop_indexes(self) -> None:
        """Remove user-created value indexes (index-ablation bench)."""

    @abstractmethod
    def execute(self, qid: str, params: dict) -> list[str]:
        """Run one workload query and return normalized result strings."""

    # -- ad-hoc queries --------------------------------------------------------

    def adhoc(self, text: str, params: dict | None = None) -> QueryResult:
        """Run an arbitrary engine-level query and return a
        :class:`QueryResult` of normalized strings plus timing.

        ``text`` is whatever query language the engine speaks natively —
        XQuery for the tree engines, a pure path expression for the edge
        store — so callers (the CLI, shard workers) need not special-case
        engine types.  Engines without an ad-hoc query surface raise
        :class:`UnsupportedOperation`.
        """
        self._require_loaded()
        start = time.perf_counter()
        values = self._adhoc(text, dict(params or {}))
        return QueryResult("adhoc", values, time.perf_counter() - start)

    def _adhoc(self, text: str, params: dict) -> list[str]:
        """Subclass hook behind :meth:`adhoc`."""
        raise UnsupportedOperation(
            f"{self.row_label}: ad-hoc queries not supported")

    def execute_per_document(self, qid: str, params: dict,
                             names: list[str]
                             ) -> list[tuple[str, list[str]]]:
        """Evaluate a *document-selection* workload query once per named
        document, returning ``(name, values)`` pairs in ``names`` order.

        Documents in the engine's collection that are not listed in
        ``names`` (replicated reference documents, e.g. DC/MD's flat
        ``customer.xml``) stay visible to every per-document evaluation.
        The sharded execution service uses this to reassemble global
        document order across shards; engines without per-document
        scoping raise :class:`UnsupportedOperation` and the service falls
        back to shard-order concatenation.
        """
        raise UnsupportedOperation(
            f"{self.row_label}: per-document execution not supported")

    # -- update workload (the paper's planned extension #2) -----------------
    #
    # The first XBench version is query-only; these three operations
    # implement the natural transactional updates of the multi-document
    # classes: new documents arrive, documents are archived, and a value
    # inside a document changes (an order's status, say).  Engines that
    # cannot support an operation raise UnsupportedOperation.

    def insert_document(self, name: str, text: str) -> None:
        """Add one document to the loaded database."""
        raise UnsupportedOperation(
            f"{self.row_label}: document insertion not supported")

    def delete_document(self, name: str) -> None:
        """Remove one document from the loaded database."""
        raise UnsupportedOperation(
            f"{self.row_label}: document deletion not supported")

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        """Set the text of ``target_tag`` inside the document(s) matching
        ``id_path = id_value``; returns the number of values changed."""
        raise UnsupportedOperation(
            f"{self.row_label}: value updates not supported")

    def export_documents(self):
        """The loaded documents as parsed trees, in collection order.

        The durable sharded engine's checkpoint path calls this inside
        each worker to capture the *current* (post-update) state, then
        encodes it into RXSN snapshots.  Engines whose loaded form is
        not a document collection (the relational analogues) raise
        :class:`UnsupportedOperation` — they cannot be checkpointed.
        """
        raise UnsupportedOperation(
            f"{self.row_label}: document export not supported")

    def relational_database(self):
        """The engine's relstore Database, if it has one (else None)."""
        return None

    def timed_execute(self, qid: str, params: dict) -> QueryResult:
        """Execute with wall-clock timing (the paper's cold-run time)."""
        self._require_loaded()
        _faults.inject("engine.execute", engine=self.key, qid=qid)
        database = self.relational_database()
        if database is not None:
            database.reset_scan_counters()
        before = _obs.counters_snapshot()
        tree_attrs = {"qid": qid, "engine": self.key,
                      "system": self.row_label}
        if self.db_class is not None:
            tree_attrs["class"] = self.db_class.key
        start = time.perf_counter()
        with _obs.plan_tree(**tree_attrs) as plan:
            values = self.execute(qid, params)
            plan.add(rows_out=len(values))
        elapsed = time.perf_counter() - start
        rows_scanned = (database.rows_scanned()
                        if database is not None else None)
        if rows_scanned:
            _obs.count("relstore.rows_scanned", rows_scanned)
        counters = _obs.counters_delta(before)
        return QueryResult(qid, values, elapsed, rows_scanned, counters)

    def timed_load(self, db_class: DatabaseClass,
                   texts) -> LoadStats:
        """Bulk load with wall-clock timing.

        ``texts`` is any iterable of ``(name, xml_text)`` pairs — a
        plain list, or a lazy :class:`~repro.core.corpus_io.FileCorpus`
        whose file reads then happen inside the timed region, like the
        paper's file loads.  Corpora exposing ``total_bytes()`` (file
        metadata) are sized without reading; anything else is counted
        *during* the load pass, so one-shot iterables are neither
        re-read nor exhausted.
        """
        _faults.inject("engine.bulk_load", engine=self.key,
                       db_class=db_class.key)
        total = getattr(texts, "total_bytes", None)
        counting = None if total is not None else _CountingTexts(texts)
        start = time.perf_counter()
        stats = self.bulk_load(db_class,
                               texts if counting is None else counting)
        stats.seconds = time.perf_counter() - start
        if counting is None:
            stats.documents = len(texts)
            stats.bytes = total()
        else:
            stats.documents = counting.documents
            stats.bytes = counting.bytes
        self.db_class = db_class
        self.loaded = True
        # Generic load counters — every engine parses its documents and
        # LoadStats.rows already reports its architecture's side work
        # (shredded rows / side-table inserts), so the hooks stay here
        # rather than inside each engine's bulk_load.
        _obs.count("engine.documents_parsed", stats.documents)
        if stats.rows:
            _obs.count("engine.rows_shredded", stats.rows)
        return stats

    def _require_loaded(self) -> None:
        if not self.loaded or self.db_class is None:
            raise BenchmarkError(
                f"{self.row_label}: no database loaded")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine {self.row_label}>"
