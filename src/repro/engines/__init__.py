"""DBMS engine analogues: native, Xcolumn, Xcollection, SQL Server.

Engines are obtained through the registry factory :func:`create`, which
is the one construction path shared by the CLI, the benchmark driver and
the sharded execution service (whose worker processes receive only the
engine *key* and construct their own instance).  Engines are context
managers::

    with create("native") as engine:
        engine.timed_load(db_class, texts)
        ...
    # close() has released trees, relstore tables, caches and summaries

:func:`register` adds third-party engines to the registry;
:func:`make_engines` remains as a deprecated shim over the registry.
"""

from __future__ import annotations

from typing import Callable

from ..errors import EngineError
from .base import Engine, LoadStats, QueryResult
from .native import NativeEngine, normalize_result
from .relational import ShreddedEngine, SqlServerEngine, XCollectionEngine
from .shredding import ShreddedStore, ShredPlan, build_plan
from .xcolumn import XColumnEngine


def _edge_factory() -> Engine:
    # Imported lazily: the edge store is an ablation extra, not one of
    # the paper's four systems.
    from .edge import EdgeEngine
    return EdgeEngine()


#: Registry: engine key -> zero-argument factory.  The paper's four rows
#: first (table row order), ablation extras after.
_REGISTRY: dict[str, Callable[[], Engine]] = {
    "xcolumn": XColumnEngine,
    "xcollection": XCollectionEngine,
    "sqlserver": SqlServerEngine,
    "native": NativeEngine,
    "edge": _edge_factory,
}

#: The paper's four systems in table row order.
PAPER_ENGINE_KEYS: tuple[str, ...] = ("xcolumn", "xcollection",
                                      "sqlserver", "native")

#: Deprecated alias kept for old callers; prefer the registry.
ENGINE_FACTORIES = (XColumnEngine, XCollectionEngine, SqlServerEngine,
                    NativeEngine)


def create(key: str) -> Engine:
    """A fresh engine instance for ``key`` (the registry factory)."""
    factory = _REGISTRY.get(key)
    if factory is None:
        raise EngineError(
            f"unknown engine key {key!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}")
    return factory()


def register(key: str, factory: Callable[[], Engine]) -> None:
    """Add (or replace) a registry entry for ``key``."""
    _REGISTRY[key] = factory


def engine_keys() -> tuple[str, ...]:
    """All registered engine keys (paper rows first)."""
    return tuple(_REGISTRY)


def make_engines() -> list[Engine]:
    """Fresh instances of all four engines (paper row order).

    Deprecated: use :func:`create` (one engine by key) or iterate
    :data:`PAPER_ENGINE_KEYS`; kept as a shim for existing callers.
    """
    return [create(key) for key in PAPER_ENGINE_KEYS]


__all__ = [
    "Engine",
    "LoadStats",
    "QueryResult",
    "NativeEngine",
    "normalize_result",
    "ShreddedEngine",
    "SqlServerEngine",
    "XCollectionEngine",
    "ShreddedStore",
    "ShredPlan",
    "build_plan",
    "XColumnEngine",
    "ENGINE_FACTORIES",
    "PAPER_ENGINE_KEYS",
    "create",
    "register",
    "engine_keys",
    "make_engines",
]
