"""DBMS engine analogues: native, Xcolumn, Xcollection, SQL Server."""

from .base import Engine, LoadStats, QueryResult
from .native import NativeEngine, normalize_result
from .relational import ShreddedEngine, SqlServerEngine, XCollectionEngine
from .shredding import ShreddedStore, ShredPlan, build_plan
from .xcolumn import XColumnEngine

#: Factories in the paper's table row order.
ENGINE_FACTORIES = (XColumnEngine, XCollectionEngine, SqlServerEngine,
                    NativeEngine)


def make_engines() -> list[Engine]:
    """Fresh instances of all four engines (paper row order)."""
    return [factory() for factory in ENGINE_FACTORIES]


__all__ = [
    "Engine",
    "LoadStats",
    "QueryResult",
    "NativeEngine",
    "normalize_result",
    "ShreddedEngine",
    "SqlServerEngine",
    "XCollectionEngine",
    "ShreddedStore",
    "ShredPlan",
    "build_plan",
    "XColumnEngine",
    "ENGINE_FACTORIES",
    "make_engines",
]
