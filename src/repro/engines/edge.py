"""Edge/interval-encoded storage (ablation engine).

The paper's relational engines shred against a *schema-specific* mapping
(DAD / annotated XSD).  The classic schema-agnostic alternative — the
edge table with pre/post interval encoding (Dietz numbering, as in the
XQuery-to-SQL literature the paper cites) — stores every element as a row

    nodes(pre, post, parent_pre, tag, text, tagtext, doc)

plus an ``attrs`` table, and answers path steps with self-joins:
children via ``parent_pre``, descendants via ``pre BETWEEN pre AND
post``, value predicates via the combined ``tag\\x00text`` column.

It needs no per-class mapping at all (the same loader handles all four
XBench classes), at the price of one self-join per path step — the
shredding-granularity trade-off DESIGN.md lists as design decision #2.
``benchmarks/bench_ablation_edge.py`` quantifies it against the DAD
shredders.  The engine is an ablation extra: it is not one of the
paper's four systems and is excluded from ``make_engines()``.
"""

from __future__ import annotations

from ..databases.base import DatabaseClass
from ..errors import UnsupportedQuery
from ..obs.recorder import plan_node as _obs_plan_node
from ..relstore.database import Database
from ..relstore.table import Column
from ..relstore.types import ColumnType
from ..xml.nodes import Document, Element, Text
from ..xml.binary import materialize
from ..xml.serializer import serialize
from .base import Engine, LoadStats
from .translation import element_str

_SEPARATOR = "\x00"


class EdgeStore:
    """Interval-encoded node storage over the mini relational engine."""

    def __init__(self) -> None:
        self.database = Database()
        self.database.create_table("nodes", [
            Column("pre", ColumnType.INTEGER, nullable=False),
            Column("post", ColumnType.INTEGER, nullable=False),
            Column("parent_pre", ColumnType.INTEGER),
            Column("tag", ColumnType.TEXT, nullable=False),
            Column("text", ColumnType.TEXT),       # direct text content
            Column("tagtext", ColumnType.TEXT),    # tag + \x00 + text
            Column("doc", ColumnType.TEXT),
        ])
        self.database.create_table("attrs", [
            Column("owner_pre", ColumnType.INTEGER, nullable=False),
            Column("owner_tag", ColumnType.TEXT, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("value", ColumnType.TEXT),
            Column("namevalue", ColumnType.TEXT),  # name + \x00 + value
            Column("doc", ColumnType.TEXT),
        ])
        self._next_pre = 0

    # -- loading --------------------------------------------------------------

    def load_document(self, document: Document) -> int:
        """Number the tree and insert its rows; returns nodes inserted."""
        nodes_table = self.database.table("nodes")
        attrs_table = self.database.table("attrs")
        inserted = 0

        def visit(element: Element, parent_pre: int | None) -> None:
            nonlocal inserted
            self._next_pre += 1
            pre = self._next_pre
            direct_text = "".join(
                child.text for child in element.children
                if isinstance(child, Text))
            for name, attr in element.attributes.items():
                attrs_table.insert({
                    "owner_pre": pre, "owner_tag": element.tag,
                    "name": name, "value": attr.value,
                    "namevalue": f"{name}{_SEPARATOR}{attr.value}",
                    "doc": document.name})
            for child in element.child_elements():
                visit(child, pre)
            nodes_table.insert({
                "pre": pre, "post": self._next_pre + 1,
                "parent_pre": parent_pre, "tag": element.tag,
                "text": direct_text,
                "tagtext": f"{element.tag}{_SEPARATOR}{direct_text}",
                "doc": document.name})
            inserted += 1

        visit(document.root_element, None)
        return inserted

    def build_key_indexes(self) -> None:
        """Structural indexes every interval store needs."""
        self.database.create_index("nodes", "pre", "sorted")
        self.database.create_index("nodes", "parent_pre", "hash")
        self.database.create_index("nodes", "tag", "hash")
        self.database.create_index("attrs", "owner_pre", "hash")

    # -- path primitives -----------------------------------------------------------

    def by_attr(self, owner_tag: str, name: str, value: str) -> list[dict]:
        """Elements with ``@name = value`` (and the given tag)."""
        index = self.database.index_for("attrs", "namevalue")
        needle = f"{name}{_SEPARATOR}{value}"
        if index is not None:
            rows = list(self.database.lookup("attrs", "namevalue",
                                             needle))
        else:
            rows = [row for row in self.database.scan("attrs")
                    if row["namevalue"] == needle]
        out = []
        for attr in rows:
            if attr["owner_tag"] == owner_tag:
                out.append(self.node(attr["owner_pre"]))
        return out

    def by_tag_text(self, tag: str, text: str) -> list[dict]:
        """Elements with the given tag and direct text (value index)."""
        needle = f"{tag}{_SEPARATOR}{text}"
        index = self.database.index_for("nodes", "tagtext")
        if index is not None:
            return list(self.database.lookup("nodes", "tagtext",
                                             needle))
        return [row for row in self.database.scan("nodes")
                if row["tagtext"] == needle]

    def node(self, pre: int) -> dict:
        return next(iter(self.database.lookup("nodes", "pre", pre)))

    def by_tag(self, tag: str) -> list[dict]:
        """All element rows with ``tag`` (tag hash index when built)."""
        if self.database.index_for("nodes", "tag") is not None:
            return list(self.database.lookup("nodes", "tag", tag))
        return [row for row in self.database.scan("nodes")
                if row["tag"] == tag]

    def children(self, pre: int, tag: str | None = None) -> list[dict]:
        """Child elements in document order (one parent_pre self-join)."""
        rows = [row for row in
                self.database.lookup("nodes", "parent_pre", pre)
                if tag is None or row["tag"] == tag]
        rows.sort(key=lambda row: row["pre"])
        return rows

    def parent(self, row: dict) -> dict | None:
        if row["parent_pre"] is None:
            return None
        return self.node(row["parent_pre"])

    def ancestor_with_tag(self, row: dict, tag: str) -> dict | None:
        current = row
        while True:
            current = self.parent(current)
            if current is None or current["tag"] == tag:
                return current

    def descendants(self, row: dict, tag: str | None = None) -> list[dict]:
        """Interval containment: pre BETWEEN (pre, post)."""
        rows = [candidate for candidate in
                self.database.range_scan("nodes", "pre",
                                         row["pre"] + 1, row["post"])
                if tag is None or candidate["tag"] == tag]
        rows.sort(key=lambda candidate: candidate["pre"])
        return rows

    def subtree_text(self, row: dict) -> str:
        """Approximate string value: own text + descendants' in pre
        order (mixed-content interleaving is not recoverable from the
        edge encoding — the same infidelity the shredders have)."""
        parts = [row["text"] or ""]
        parts.extend(descendant["text"] or ""
                     for descendant in self.descendants(row))
        return "".join(parts)

    def attributes_of(self, pre: int) -> list[dict]:
        return list(self.database.lookup("attrs", "owner_pre", pre))

    def reconstruct(self, row: dict) -> Element:
        """Rebuild a subtree (text placed before child elements)."""
        element = Element(row["tag"])
        for attr in self.attributes_of(row["pre"]):
            element.set_attribute(attr["name"], attr["value"])
        if row["text"]:
            element.append_text(row["text"])
        for child in self.children(row["pre"]):
            element.append(self.reconstruct(child))
        return element


# anchor specs per class: (tag, attribute) or (tag, None) for text keys
_ANCHORS = {
    "dcsd": ("item", "id"),
    "dcmd": ("order", "id"),
    "tcmd": ("article", "id"),
    "tcsd": ("entry", None),          # keyed by child hw text
}


class EdgeEngine(Engine):
    """Schema-agnostic interval-table engine (ablation extra)."""

    key = "edge"
    row_label = "Edge"
    description = "pre/post interval encoding, schema-agnostic shredding"

    def __init__(self) -> None:
        super().__init__()
        self.store = EdgeStore()
        self._index_paths: list[str] = []

    def bulk_load(self, db_class: DatabaseClass, texts) -> LoadStats:
        self.store = EdgeStore()
        rows = 0
        for name, text in texts:
            rows += self.store.load_document(materialize(name, text))
        self.store.build_key_indexes()
        return LoadStats(rows=rows,
                         notes=["interval-encoded, schema-agnostic"])

    def relational_database(self):
        return self.store.database

    def create_indexes(self, paths: list[str]) -> None:
        self._index_paths = list(paths)
        for path in paths:
            if "/@" in path:
                self.store.database.create_index("attrs", "namevalue",
                                                 "sorted")
            else:
                self.store.database.create_index("nodes", "tagtext",
                                                 "sorted")

    def drop_indexes(self) -> None:
        for path in self._index_paths:
            if "/@" in path:
                self.store.database.indexes.pop(("attrs", "namevalue"),
                                                None)
            else:
                self.store.database.indexes.pop(("nodes", "tagtext"),
                                                None)
        self._index_paths = []

    def _release(self) -> None:
        """Drop the interval-encoded tables and their indexes."""
        self.store = EdgeStore()
        self._index_paths = []

    # -- query plans (the experiment subset, all four classes) ----------------

    def execute(self, qid: str, params: dict) -> list[str]:
        self._require_loaded()
        assert self.db_class is not None
        handler = getattr(self, f"_{qid.lower()}_{self.db_class.key}",
                          None)
        if handler is not None:
            with _obs_plan_node("edge.handwritten_plan",
                                handler=handler.__name__) as plan_node:
                values = handler(params)
                plan_node.add(rows_out=len(values))
            return values
        # No handwritten plan: pure path queries compile generically
        # into structural joins (the edge encoding's signature ability).
        from ..workload.queries import QUERIES_BY_ID
        from .pathcompiler import UnsupportedPathError
        query = QUERIES_BY_ID.get(qid)
        if query is not None and query.applies_to(self.db_class.key):
            try:
                with _obs_plan_node("edge.pathcompiler_plan",
                                    qid=qid) as plan_node:
                    values = self.run_path(
                        query.text_for(self.db_class.key), params)
                    plan_node.add(rows_out=len(values))
                return values
            except UnsupportedPathError:
                pass
        raise UnsupportedQuery(
            f"Edge: no plan for {qid} on {self.db_class.key}")

    def run_path(self, text: str, params: dict | None = None
                 ) -> list[str]:
        """Execute an arbitrary pure path expression via structural
        joins; element results are reconstructed and serialized."""
        from .pathcompiler import run_path
        out = []
        for item in run_path(self.store, text, params):
            if isinstance(item, dict):
                out.append(serialize(self.store.reconstruct(item)))
            else:
                out.append(item)
        return out

    def _adhoc(self, text: str, params: dict) -> list[str]:
        return self.run_path(text, params)

    def _anchors(self, params: dict) -> list[dict]:
        assert self.db_class is not None
        tag, attr = _ANCHORS[self.db_class.key]
        if attr is not None:
            return self.store.by_attr(tag, attr, str(params["id"]))
        rows = self.store.by_tag_text("hw", str(params["word"]))
        return [self.store.parent(row) for row in rows]

    # Q5 — absolute ordered access: pre order gives document order.

    def _q5_dcmd(self, params: dict) -> list[str]:
        out = []
        for order in self._anchors(params):
            lines = self.store.children(order["pre"], "order_lines")
            for container in lines[:1]:
                order_lines = self.store.children(container["pre"],
                                                  "order_line")
                if order_lines:
                    item = self.store.children(order_lines[0]["pre"],
                                               "item_id")
                    if item:
                        out.append(element_str("item_id",
                                               item[0]["text"]))
        return out

    def _q5_dcsd(self, params: dict) -> list[str]:
        out = []
        for item in self._anchors(params):
            for authors in self.store.children(item["pre"],
                                               "authors")[:1]:
                author_rows = self.store.children(authors["pre"],
                                                  "author")
                if author_rows:
                    name = self.store.children(author_rows[0]["pre"],
                                               "name")
                    last = name and self.store.children(name[0]["pre"],
                                                        "last_name")
                    if last:
                        out.append(element_str("last_name",
                                               last[0]["text"]))
        return out

    def _q5_tcsd(self, params: dict) -> list[str]:
        out = []
        for entry in self._anchors(params):
            definitions = self.store.children(entry["pre"], "definition")
            if definitions:
                def_text = self.store.children(definitions[0]["pre"],
                                               "def_text")
                if def_text:
                    out.append(element_str("def_text",
                                           def_text[0]["text"]))
        return out

    def _q5_tcmd(self, params: dict) -> list[str]:
        out = []
        for article in self._anchors(params):
            for body in self.store.children(article["pre"], "body")[:1]:
                sections = self.store.children(body["pre"], "sec")
                if sections:
                    heading = self.store.children(sections[0]["pre"],
                                                  "heading")
                    if heading:
                        out.append(element_str("heading",
                                               heading[0]["text"]))
        return out

    # Q8 — unknown element: one extra child self-join per candidate.

    def _q8_dcsd(self, params: dict) -> list[str]:
        return self._wildcard_then(params, "suggested_retail_price")

    def _q8_dcmd(self, params: dict) -> list[str]:
        return self._wildcard_then(params, "ship_type")

    def _q8_tcmd(self, params: dict) -> list[str]:
        return self._wildcard_then(params, "title")

    def _q8_tcsd(self, params: dict) -> list[str]:
        out = []
        for entry in self._anchors(params):
            for unknown in self.store.children(entry["pre"]):
                for quote in self.store.children(unknown["pre"],
                                                 "quote"):
                    for qt in self.store.children(quote["pre"], "qt"):
                        out.append(element_str(
                            "qt", self.store.subtree_text(qt)))
        return out

    def _wildcard_then(self, params: dict, leaf_tag: str) -> list[str]:
        out = []
        for anchor in self._anchors(params):
            for unknown in self.store.children(anchor["pre"]):
                for leaf in self.store.children(unknown["pre"],
                                                leaf_tag):
                    out.append(element_str(leaf_tag, leaf["text"]))
        return out

    # Q12 — construction: recursive parent_pre joins.

    def _q12_dcsd(self, params: dict) -> list[str]:
        out = []
        for item in self._anchors(params):
            for authors in self.store.children(item["pre"], "authors"):
                author_rows = self.store.children(authors["pre"],
                                                  "author")
                if not author_rows:
                    continue
                wrapper = Element("address_info")
                for contact in self.store.children(
                        author_rows[0]["pre"], "contact_information"):
                    for mailing in self.store.children(
                            contact["pre"], "mailing_address"):
                        wrapper.append(self.store.reconstruct(mailing))
                out.append(serialize(wrapper))
        return out

    def _q12_dcmd(self, params: dict) -> list[str]:
        out = []
        for order in self._anchors(params):
            wrapper = Element("payment_info")
            for billing in self.store.children(order["pre"],
                                               "billing_information"):
                for card in self.store.children(billing["pre"],
                                                "credit_card"):
                    wrapper.append(self.store.reconstruct(card))
            out.append(serialize(wrapper))
        return out

    def _q12_tcsd(self, params: dict) -> list[str]:
        out = []
        for entry in self._anchors(params):
            wrapper = Element("entry_info")
            for definition in self.store.children(entry["pre"],
                                                  "definition"):
                wrapper.append(self.store.reconstruct(definition))
            out.append(serialize(wrapper))
        return out

    def _q12_tcmd(self, params: dict) -> list[str]:
        out = []
        for article in self._anchors(params):
            wrapper = Element("article_info")
            for prolog in self.store.children(article["pre"], "prolog"):
                for title in self.store.children(prolog["pre"],
                                                 "title"):
                    wrapper.append(self.store.reconstruct(title))
                for abstract in self.store.children(prolog["pre"],
                                                    "abstract"):
                    wrapper.append(self.store.reconstruct(abstract))
            out.append(serialize(wrapper))
        return out

    # Q14 — missing elements: anti-joins over child rows.

    def _q14_dcsd(self, params: dict) -> list[str]:
        low, high = str(params["from"]), str(params["to"])
        seen: set[str] = set()
        out = []
        for date_row in self._tag_text_range("date_of_release", low,
                                             high):
            item = self.store.parent(date_row)
            if item is None or item["tag"] != "item":
                continue
            for publisher in self.store.children(item["pre"],
                                                 "publisher"):
                if self.store.children(publisher["pre"], "fax"):
                    continue
                names = self.store.children(publisher["pre"], "name")
                if names and names[0]["text"] not in seen:
                    seen.add(names[0]["text"])
                    out.append(names[0]["text"])
        return out

    def _tag_text_range(self, tag: str, low: str, high: str
                        ) -> list[dict]:
        """Elements with tag text in [low, high] via the tagtext index
        (lexicographic on the combined column), else a scan."""
        index = self.store.database.index_for("nodes", "tagtext")
        if index is not None:
            rows = list(self.store.database.range_scan(
                "nodes", "tagtext", f"{tag}{_SEPARATOR}{low}",
                f"{tag}{_SEPARATOR}{high}"))
        else:
            rows = [row for row in self.store.database.scan("nodes")
                    if row["tag"] == tag
                    and row["text"] is not None
                    and low <= row["text"] <= high]
        rows.sort(key=lambda row: row["pre"])
        return rows

    def _q14_dcmd(self, params: dict) -> list[str]:
        low, high = str(params["from"]), str(params["to"])
        out = []
        for date_row in self._tag_text_range("order_date", low, high):
            order = self.store.parent(date_row)
            if order is None or order["tag"] != "order":
                continue
            missing = True
            for shipping in self.store.children(order["pre"],
                                                "shipping_information"):
                for address in self.store.children(shipping["pre"],
                                                   "shipping_address"):
                    if self.store.children(address["pre"], "street2"):
                        missing = False
            if missing:
                for attr in self.store.attributes_of(order["pre"]):
                    if attr["name"] == "id":
                        out.append(attr["value"])
        return out

    def _q14_tcsd(self, params: dict) -> list[str]:
        out = []
        for entry in self.store.database.scan("nodes"):
            if entry["tag"] != "entry":
                continue
            if not self.store.children(entry["pre"], "etymology"):
                headwords = self.store.children(entry["pre"], "hw")
                if headwords:
                    out.append(headwords[0]["text"])
        return out

    def _q14_tcmd(self, params: dict) -> list[str]:
        low, high = str(params["from"]), str(params["to"])
        out = []
        for date_row in self._tag_text_range("date_of_publication", low,
                                             high):
            prolog = self.store.parent(date_row)
            if prolog is None or prolog["tag"] != "prolog":
                continue
            if not self.store.children(prolog["pre"], "abstract"):
                titles = self.store.children(prolog["pre"], "title")
                if titles:
                    out.append(titles[0]["text"])
        return out

    # Q17 — text search: one scan of the nodes table + ancestor joins.

    def _q17_tcsd(self, params: dict) -> list[str]:
        return self._text_search(params, "entry", "hw")

    def _q17_dcsd(self, params: dict) -> list[str]:
        word = str(params["word"])
        out = []
        for row in self.store.database.scan("nodes"):
            if row["tag"] == "description" and row["text"] \
                    and word in row["text"]:
                item = self.store.parent(row)
                if item is not None:
                    titles = self.store.children(item["pre"], "title")
                    if titles:
                        out.append(titles[0]["text"])
        return out

    def _q17_dcmd(self, params: dict) -> list[str]:
        word = str(params["word"])
        matched: dict[int, dict] = {}
        for row in self.store.database.scan("nodes"):
            if row["tag"] == "comments" and row["text"] \
                    and word in row["text"]:
                order = self.store.ancestor_with_tag(row, "order")
                if order is not None:
                    matched[order["pre"]] = order
        out = []
        for pre in sorted(matched):
            for attr in self.store.attributes_of(pre):
                if attr["name"] == "id":
                    out.append(attr["value"])
        return out

    def _q17_tcmd(self, params: dict) -> list[str]:
        word = str(params["word"])
        matched: dict[int, dict] = {}
        for row in self.store.database.scan("nodes"):
            if row["text"] and word in row["text"] \
                    and row["tag"] in ("p", "heading", "citation"):
                # the query searches the body only; abstract paragraphs
                # are also <p> and must not match
                body = self.store.ancestor_with_tag(row, "body")
                if body is None:
                    continue
                article = self.store.ancestor_with_tag(row, "article")
                if article is not None:
                    matched[article["pre"]] = article
        out = []
        for pre in sorted(matched):
            article = matched[pre]
            for prolog in self.store.children(pre, "prolog"):
                for title in self.store.children(prolog["pre"],
                                                 "title"):
                    out.append(title["text"])
        return out

    def _text_search(self, params: dict, ancestor_tag: str,
                     result_tag: str) -> list[str]:
        word = str(params["word"])
        matched: dict[int, dict] = {}
        for row in self.store.database.scan("nodes"):
            if row["text"] and word in row["text"]:
                anchor = row if row["tag"] == ancestor_tag else \
                    self.store.ancestor_with_tag(row, ancestor_tag)
                if anchor is not None:
                    matched[anchor["pre"]] = anchor
        out = []
        for pre in sorted(matched):
            results = self.store.children(pre, result_tag)
            if results:
                out.append(results[0]["text"])
        return out
