"""Generic DAD/XSD-style shredding of XML documents into relational tables.

A :class:`ShredPlan` is derived mechanically from a class's schema
description, the way a DB2 XML Extender DAD or an annotated XSD describes
the mapping:

* every *repeated* element type (and the document root) becomes a table
  ("record type") with a synthetic ``id``, a ``parent_id`` foreign key to
  the nearest enclosing record and a ``doc`` column naming the source
  document;
* non-repeated descendants fold into their nearest record ancestor as
  columns named by the element path (``pricing_cost``,
  ``name_first_name``); attributes become columns too;
* mixed-content elements contribute a text column — unless the engine
  cannot map mixed content (the paper's SQL Server problem #3), in which
  case the text is dropped;
* recursive element types (TC/MD ``sec``) map to a single table whose
  ``parent_id`` points at either the enclosing record or the enclosing
  ``sec`` row.

Shredded stores do **not** record sibling order (the paper's problem #2) —
but because rows are inserted in document order, order-sensitive queries
"happen to return correct results ... but they do not guarantee
correctness", exactly as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relstore.database import Database
from ..relstore.table import Column
from ..relstore.types import ColumnType
from ..xml.nodes import Document, Element, Text
from ..xml.schema import SchemaElement

#: Reserved bookkeeping columns of every record table.
RESERVED_COLUMNS = ("id", "parent_id", "doc")

#: Column name for a record element's own (possibly mixed) text content.
CONTENT_COLUMN = "content"


@dataclass
class RecordType:
    """One table of the shred plan."""

    table_name: str
    schema_node: SchemaElement
    #: data columns in declaration order.
    columns: list[str] = field(default_factory=list)
    #: True when this record has its own text content column.
    has_content: bool = False
    #: mixed-content column names (dropped by engines without mixed support).
    mixed_columns: list[str] = field(default_factory=list)


@dataclass
class ShredPlan:
    """The full mapping for one document type (by root tag)."""

    root_tag: str
    records: list[RecordType] = field(default_factory=list)
    #: id(schema_node) -> RecordType
    by_schema_id: dict = field(default_factory=dict)
    #: id(schema_node) of folded node -> (RecordType, column_name)
    column_of: dict = field(default_factory=dict)
    #: id(schema_node) of folded node attr -> (RecordType, column_name)
    attr_column_of: dict = field(default_factory=dict)

    def record_for(self, schema_node: SchemaElement) -> RecordType | None:
        return self.by_schema_id.get(id(schema_node))


def build_plan(schema: SchemaElement,
               used_table_names: set[str] | None = None) -> ShredPlan:
    """Derive the shred plan from a schema description."""
    plan = ShredPlan(root_tag=schema.name)
    used = used_table_names if used_table_names is not None else set()

    def add_record(node: SchemaElement) -> RecordType:
        table_name = node.name
        while table_name in used:
            table_name += "_t"
        used.add(table_name)
        record = RecordType(table_name, node)
        plan.records.append(record)
        plan.by_schema_id[id(node)] = record

        def add_column(name: str, mixed: bool) -> str:
            column = name
            while column in record.columns or column in RESERVED_COLUMNS:
                column += "_c"
            record.columns.append(column)
            if mixed:
                record.mixed_columns.append(column)
            return column

        for attr in node.attributes:
            column = add_column(attr, mixed=False)
            plan.attr_column_of[(id(node), attr)] = (record, column)
        if not node.children or node.mixed or node.has_text:
            column = add_column(CONTENT_COLUMN, mixed=node.mixed)
            record.has_content = True
            plan.column_of[id(node)] = (record, column)

        def fold(child: SchemaElement, prefix: str) -> None:
            if id(child) in plan.by_schema_id:
                return                       # recursive back-reference
            if child.repeated:
                add_record(child)
                return
            for attr in child.attributes:
                column = add_column(f"{prefix}{child.name}_{attr}",
                                    mixed=False)
                plan.attr_column_of[(id(child), attr)] = (record, column)
            if not child.children or child.mixed:
                column = add_column(f"{prefix}{child.name}",
                                    mixed=child.mixed)
                plan.column_of[id(child)] = (record, column)
            for grandchild in child.children:
                fold(grandchild, f"{prefix}{child.name}_")

        for child in node.children:
            fold(child, "")
        return record

    add_record(schema)
    return plan


class ShreddedStore:
    """Relational storage produced by shredding a document corpus.

    One store may hold several plans (DC/MD shreds order documents *and*
    the five flat-translated table documents into one database).
    """

    def __init__(self, keep_mixed_text: bool = True) -> None:
        self.database = Database()
        self.keep_mixed_text = keep_mixed_text
        self.plans: dict[str, ShredPlan] = {}      # root tag -> plan
        # Record ids are globally unique across tables so that parent_id is
        # unambiguous even for recursive record types (sec inside sec);
        # owner_table maps an id back to the table holding its row.
        self._next_record_id = 0
        self.owner_table: dict[int, str] = {}
        self._table_names: set[str] = set()
        self.rows_inserted = 0
        # After build_key_indexes the store is "live": further shredding
        # maintains indexes incrementally (update workload).
        self.live = False

    # -- DDL -----------------------------------------------------------------

    def register_schema(self, schema: SchemaElement) -> ShredPlan:
        """Derive a plan from ``schema`` and create its tables."""
        plan = build_plan(schema, self._table_names)
        self.plans[plan.root_tag] = plan
        for record in plan.records:
            columns = [Column("id", ColumnType.INTEGER, nullable=False),
                       Column("parent_id", ColumnType.INTEGER),
                       Column("doc", ColumnType.TEXT)]
            columns.extend(Column(name, ColumnType.TEXT)
                           for name in record.columns)
            self.database.create_table(record.table_name, columns)
        return plan

    # -- loading ---------------------------------------------------------------

    def shred_document(self, document: Document) -> int:
        """Shred one document; returns the number of rows inserted."""
        root = document.root_element
        plan = self.plans.get(root.tag)
        if plan is None:
            return 0                      # unknown document type: skipped
        rows_before = self.rows_inserted
        self._shred_element(root, plan.records[0].schema_node, plan,
                            parent_id=None, doc_name=document.name)
        return self.rows_inserted - rows_before

    def _next_id(self, table_name: str) -> int:
        self._next_record_id += 1
        self.owner_table[self._next_record_id] = table_name
        return self._next_record_id

    def _shred_element(self, element: Element, schema_node: SchemaElement,
                       plan: ShredPlan, parent_id: int | None,
                       doc_name: str) -> int:
        """Insert the record row for ``element`` and recurse."""
        record = plan.by_schema_id[id(schema_node)]
        row: dict = {"id": self._next_id(record.table_name),
                     "parent_id": parent_id, "doc": doc_name}
        self._fill_columns(element, schema_node, plan, record, row, "")
        if self.live:
            self.database.insert_row(record.table_name, row)
        else:
            self.database.table(record.table_name).insert(row)
        self.rows_inserted += 1
        self._recurse_records(element, schema_node, plan, row["id"],
                              doc_name)
        return row["id"]

    def _fill_columns(self, element: Element, schema_node: SchemaElement,
                      plan: ShredPlan, record: RecordType, row: dict,
                      prefix: str) -> None:
        """Copy attribute/text values of the folded region into ``row``."""
        for attr_name, attr in element.attributes.items():
            mapping = plan.attr_column_of.get((id(schema_node), attr_name))
            if mapping is not None and mapping[0] is record:
                row[mapping[1]] = attr.value
        mapping = plan.column_of.get(id(schema_node))
        if mapping is not None and mapping[0] is record:
            __, column = mapping
            if schema_node.mixed and not self.keep_mixed_text:
                row[column] = None        # SQL Server: mixed content dropped
            else:
                text = element.text_content()
                row[column] = text if text else ""
        children_by_name = {child.name: child
                            for child in schema_node.children}
        for child in element.child_elements():
            child_schema = children_by_name.get(child.tag)
            if child_schema is None:
                continue                   # loose schema: unmapped element
            if id(child_schema) in plan.by_schema_id:
                continue                   # handled by _recurse_records
            self._fill_columns(child, child_schema, plan, record, row,
                               f"{prefix}{child.tag}_")

    def _recurse_records(self, element: Element,
                         schema_node: SchemaElement, plan: ShredPlan,
                         record_id: int, doc_name: str) -> None:
        """Find descendant record instances and shred them in order."""
        children_by_name = {child.name: child
                            for child in schema_node.children}
        for child in element.child_elements():
            child_schema = children_by_name.get(child.tag)
            if child_schema is None:
                continue
            if id(child_schema) in plan.by_schema_id:
                self._shred_element(child, child_schema, plan,
                                    parent_id=record_id, doc_name=doc_name)
            else:
                self._recurse_records(child, child_schema, plan,
                                      record_id, doc_name)

    # -- post-load --------------------------------------------------------------

    def build_key_indexes(self) -> None:
        """Create the pk/fk hash indexes relational DBMSs build at load.

        Also flips the store to *live* mode: subsequent shredding and
        deletion maintain all indexes incrementally.
        """
        for plan in self.plans.values():
            for record in plan.records:
                self.database.create_index(record.table_name, "id", "hash")
                self.database.create_index(record.table_name, "parent_id",
                                           "hash")
        self.live = True

    # -- update workload ---------------------------------------------------

    def delete_document(self, doc_name: str) -> int:
        """Delete every row shredded from ``doc_name``; returns count.

        A relational DELETE ... WHERE doc = ? per table — a scan unless
        an index on ``doc`` exists, which none of the paper's mappings
        create.
        """
        deleted = 0
        for plan in self.plans.values():
            for record in plan.records:
                table = self.database.table(record.table_name)
                victims = [row_id for row_id, row in table.scan()
                           if row[table.offset("doc")] == doc_name]
                for row_id in victims:
                    record_id = table.value(row_id, "id")
                    self.database.delete_row(record.table_name, row_id)
                    self.owner_table.pop(record_id, None)
                    deleted += 1
        return deleted

    # -- reconstruction ------------------------------------------------------

    def reconstruct(self, plan: ShredPlan, record: RecordType,
                    row: dict) -> Element:
        """Rebuild the XML subtree of one record row from the relational
        store — the join-heavy operation behind Q1/Q12/Q16.

        Fidelity limits are those of the mapping itself (the paper's
        Section 3.1.3): mixed-content markup comes back as flat text,
        absent optional containers are indistinguishable from containers
        whose leaves were all NULL, and sibling order across *different*
        child element types follows the schema, not the original
        document.
        """
        schema_node = record.schema_node
        element = Element(schema_node.name)
        self._fill_reconstructed(element, schema_node, plan, record, row)
        self._attach_child_records(element, schema_node, plan, row["id"])
        return element

    def _fill_reconstructed(self, element: Element,
                            schema_node: SchemaElement, plan: ShredPlan,
                            record: RecordType, row: dict) -> None:
        for attr in schema_node.attributes:
            mapping = plan.attr_column_of.get((id(schema_node), attr))
            if mapping and mapping[0] is record:
                value = row.get(mapping[1])
                if value is not None:
                    element.set_attribute(attr, value)
        mapping = plan.column_of.get(id(schema_node))
        if mapping and mapping[0] is record:
            value = row.get(mapping[1])
            if value:
                element.append_text(value)

    def _attach_child_records(self, element: Element,
                              schema_node: SchemaElement,
                              plan: ShredPlan, record_id: int) -> None:
        for child_schema in schema_node.children:
            child_record = plan.by_schema_id.get(id(child_schema))
            if child_record is not None:
                if child_schema is schema_node:
                    continue           # recursive type: rows attach below
                for child_row in self.database.lookup(
                        child_record.table_name, "parent_id", record_id):
                    element.append(self.reconstruct(plan, child_record,
                                                    child_row))
            else:
                child = self._reconstruct_folded(child_schema, plan,
                                                 record_id)
                if child is not None:
                    element.append(child)
        # Recursive self-children (TC/MD sec inside sec).
        self_record = plan.by_schema_id.get(id(schema_node))
        if self_record is not None and schema_node in schema_node.children:
            for child_row in self.database.lookup(
                    self_record.table_name, "parent_id", record_id):
                element.append(self.reconstruct(plan, self_record,
                                                child_row))

    def _reconstruct_folded(self, schema_node: SchemaElement,
                            plan: ShredPlan,
                            record_id: int) -> Element | None:
        """Rebuild a folded (non-record) element from its owner's row;
        returns None when every mapped value is NULL (missing element).

        Pure containers (no mapped columns of their own, e.g.
        ``authors``) are rebuilt purely from their descendants.
        """
        record, row = self._owning_row(plan, schema_node, record_id)
        element = Element(schema_node.name)
        present = False
        for attr in schema_node.attributes:
            mapping = plan.attr_column_of.get((id(schema_node), attr))
            if mapping:
                value = row.get(mapping[1])
                if value is not None:
                    element.set_attribute(attr, value)
                    present = True
        mapping = plan.column_of.get(id(schema_node))
        if mapping:
            value = row.get(mapping[1])
            if value is not None:
                if value:
                    element.append_text(value)
                present = True
        for child_schema in schema_node.children:
            child_record = plan.by_schema_id.get(id(child_schema))
            if child_record is not None:
                for child_row in self.database.lookup(
                        child_record.table_name, "parent_id", record_id):
                    element.append(self.reconstruct(plan, child_record,
                                                    child_row))
                    present = True
            else:
                child = self._reconstruct_folded(child_schema, plan,
                                                 record_id)
                if child is not None:
                    element.append(child)
                    present = True
        return element if present else None

    def _owning_row(self, plan: ShredPlan, schema_node: SchemaElement,
                    record_id: int):
        """The (record, row) pair whose columns hold this folded node."""
        for attr in schema_node.attributes:
            mapping = plan.attr_column_of.get((id(schema_node), attr))
            if mapping:
                return self._record_row(mapping[0], record_id)
        mapping = plan.column_of.get(id(schema_node))
        if mapping:
            return self._record_row(mapping[0], record_id)
        # Pure container: synthesize an empty row against no record.
        return None, {}

    def _record_row(self, record: RecordType, record_id: int):
        rows = list(self.database.lookup(record.table_name, "id",
                                         record_id))
        return (record, rows[0]) if rows else (None, {})

    def table_for_tag(self, root_tag: str, element_tag: str):
        """The table storing ``element_tag`` records of one plan."""
        plan = self.plans[root_tag]
        for record in plan.records:
            if record.schema_node.name == element_tag:
                return self.database.table(record.table_name)
        raise KeyError(element_tag)
