"""Native XML DBMS analogue (the paper's X-Hive).

Storage architecture: documents are parsed once at load time and kept as
trees — no mapping, no shredding.  Queries are genuine XQuery evaluated by
:mod:`repro.xquery`.

Value indexes (Table 3) are per-document-tree structures, as in X-Hive's
library indexes: an accelerated plan can jump to matching nodes *within*
trees, but a ``collection()`` query still visits every document of a
multi-document class.  That per-document cost is exactly the weakness the
paper measures for X-Hive in DC/MD ("X-Hive suffers from accessing huge
amounts of XML documents"); it emerges here from the same architecture
rather than from tuned constants.

Consequences (mirroring the paper's Experiment 2/3 analysis):

* fastest bulk load everywhere — parsing is all it does;
* perfect structure preservation and document order (Q5/Q12 oracle);
* single-document classes with an applicable index answer point queries
  without scanning;
* multi-document classes pay per-document evaluation, so DC/MD queries
  degrade with document count;
* no full-text index: Q17/Q18 walk all text.
"""

from __future__ import annotations

from ..databases.base import DatabaseClass
from ..errors import XQueryEvalError
from ..obs.recorder import count as _obs_count
from ..obs.recorder import plan_node as _obs_plan_node
from ..workload.queries import QUERIES_BY_ID
from ..xml.binary import materialize
from ..xml.nodes import Attribute, Document, Element, Node, Text
from ..xml.serializer import serialize
from ..xquery.context import Context
from ..xquery.engine import StaticCollection, XQueryEngine
from ..xquery.evaluator import evaluate as _evaluate
from ..xquery.items import string_value
from .base import Engine, LoadStats
from .planner import IndexProbePlan, QueryPlanner, ScanPlan

# Legacy override/fallback table, fully subsumed by the generic planner
# (tests/test_planner.py asserts every entry is re-derived from the AST
# without consulting this dict).  Kept only as a safety net: if the
# planner ever declines a query the table still covers, the engine falls
# back here and counts ``planner.fallback_overrides``.
# (qid, class) -> (index path, parameter name, XQuery relative to each
# indexed node).  Element-value indexes (e.g. "hw") yield the
# value-carrying element, so relative queries step up with "..".  The
# multi-document classes have no entries: collection() iteration is the
# architectural cost being modeled.
_ACCELERATED: dict[tuple[str, str], tuple[str, str, str]] = {
    ("Q1", "dcsd"): ("item/@id", "id", "."),
    ("Q5", "dcsd"): ("item/@id", "id", "authors/author[1]/name/last_name"),
    ("Q8", "dcsd"): ("item/@id", "id", "*/suggested_retail_price"),
    ("Q12", "dcsd"): ("item/@id", "id",
                      "for $a in ./authors/author[1] return <address_info>"
                      "{ $a/contact_information/mailing_address }"
                      "</address_info>"),
    ("Q5", "tcsd"): ("hw", "word", "../definition[1]/def_text"),
    ("Q8", "tcsd"): ("hw", "word", "../*/quote/qt"),
    ("Q11", "tcsd"): ("hw", "word",
                      "for $q in ../definition/quote "
                      "where exists($q/date) order by xs:date($q/date) "
                      "return <quotation>{ $q/author }{ $q/date }"
                      "</quotation>"),
    ("Q12", "tcsd"): ("hw", "word",
                      "<entry_info>{ ../definition }</entry_info>"),
}


class NativeEngine(Engine):
    """In-memory tree store + real XQuery evaluation."""

    key = "native"
    row_label = "X-Hive"
    description = "native XML DBMS analogue (tree storage, XQuery)"

    def __init__(self) -> None:
        super().__init__()
        self._collection = StaticCollection()
        self._xquery = XQueryEngine()
        # index path -> {value: [nodes]}
        self._indexes: dict[str, dict[str, list[Node]]] = {}
        # query text -> IndexProbePlan | ScanPlan; cleared whenever the
        # collection or the declared indexes change.
        self._plan_cache: dict[str, IndexProbePlan | ScanPlan] = {}

    def bulk_load(self, db_class: DatabaseClass,
                  texts: list[tuple[str, str]]) -> LoadStats:
        self._collection = StaticCollection()
        self._indexes.clear()
        self._plan_cache.clear()
        for name, text in texts:
            self._collection.add(materialize(name, text))
        return LoadStats(rows=0, notes=["parsed into trees"])

    def create_indexes(self, paths: list[str]) -> None:
        for path in paths:
            self._indexes[path] = self._build_index(path)
        self._plan_cache.clear()

    def drop_indexes(self) -> None:
        self._indexes.clear()
        self._plan_cache.clear()

    def _release(self) -> None:
        """Drop the trees (and their cached structural summaries), the
        value indexes and the plan cache."""
        self._collection = StaticCollection()
        self._indexes.clear()
        self._plan_cache.clear()

    def _build_index(self, path: str) -> dict[str, list[Node]]:
        """Index every document: value -> value-carrying nodes.

        Paths are either ``tag/@attr`` (index owner elements by attribute
        value) or a bare element tag (index the elements by their text).
        """
        index: dict[str, list[Node]] = {}
        for document in self._collection.collection():
            self._index_document(path, index, document)
        return index

    @staticmethod
    def _index_document(path: str, index: dict,
                        document: Document) -> None:
        """Add one document's entries for the value index at ``path``.

        Paths resolve through the document's structural summary: a bare
        tag (or ``tag/@attr``) matches that tag anywhere, while slashed
        element parts match their full relative path — two same-named
        tags at different paths index independently.
        """
        summary = document.structural_summary()
        if "/@" in path:
            element_path, __, attr_name = path.partition("/@")
            for element in summary.elements_matching(element_path):
                value = element.get(attr_name)
                if value is not None:
                    index.setdefault(value, []).append(element)
        else:
            for element in summary.elements_matching(path):
                index.setdefault(element.text_content(),
                                 []).append(element)

    def execute(self, qid: str, params: dict) -> list[str]:
        self._require_loaded()
        assert self.db_class is not None
        class_key = self.db_class.key
        text = QUERIES_BY_ID[qid].text_for(class_key)
        plan = self._plan_for(text)

        if isinstance(plan, IndexProbePlan):
            index = self._indexes.get(plan.index_path)
            if index is not None:
                return self._run_index_plan(plan, index, params)
            scan_reason = f"index {plan.index_path} not built"
        else:
            scan_reason = plan.reason

        # Safety net: the planner should subsume every override entry;
        # reaching this branch means it declined one the table covers.
        legacy = _ACCELERATED.get((qid, class_key))
        if legacy is not None:
            path, param_name, relative_query = legacy
            index = self._indexes.get(path)
            if index is not None and not isinstance(plan, IndexProbePlan):
                _obs_count("native.index_hits")
                _obs_count("planner.fallback_overrides")
                value = str(params[param_name])
                with _obs_plan_node("native.index_lookup", path=path,
                                    source="override") as plan_node:
                    matches = index.get(value, [])
                    out = self._run_accelerated(index, value,
                                                relative_query, params)
                    plan_node.add(rows_in=len(matches),
                                  rows_out=len(out))
                return out

        _obs_count("native.collection_scans")
        _obs_count("native.documents_visited", len(self._collection))
        context_item = None
        if self.db_class.single_document:
            documents = self._collection.collection()
            if not documents:
                raise XQueryEvalError("collection is empty")
            context_item = documents[0]
        with _obs_plan_node("native.collection_scan",
                            documents=len(self._collection),
                            reason=scan_reason) as plan_node:
            result = self._xquery.execute(text, self._collection,
                                          variables=dict(params),
                                          context_item=context_item)
            out = normalize_result(result)
            plan_node.add(rows_in=len(self._collection),
                          rows_out=len(out))
        return out

    def _plan_for(self, text: str) -> IndexProbePlan | ScanPlan:
        """Plan ``text`` (cached per collection/index generation)."""
        plan = self._plan_cache.get(text)
        if plan is None:
            compiled = self._xquery.compile(text)
            planner = QueryPlanner(
                self._indexes.keys(),
                lambda: [document.structural_summary()
                         for document in self._collection.collection()])
            plan = planner.plan(compiled.expression)
            self._plan_cache[text] = plan
            if isinstance(plan, IndexProbePlan):
                _obs_count("planner.index_plans")
            else:
                _obs_count("planner.scan_plans")
        return plan

    def _run_index_plan(self, plan: IndexProbePlan, index: dict,
                        params: dict) -> list[str]:
        """Probe the index, evaluate the residual per matched node."""
        _obs_count("native.index_hits")
        if plan.param is not None:
            value = str(params[plan.param])
        else:
            value = str(plan.literal)
        entries = sum(len(nodes) for nodes in index.values())
        estimated = max(1, round(entries / len(index))) if index else 0
        bound = {name: val if isinstance(val, list) else [val]
                 for name, val in params.items()}
        with _obs_plan_node("native.index_lookup", path=plan.index_path,
                            source="planner", probe=plan.probe_desc,
                            residual=plan.residual_desc,
                            why=plan.reason,
                            estimated_rows=estimated) as plan_node:
            matches = index.get(value, [])
            out: list[str] = []
            for node in matches:
                context = Context(variables=dict(bound), item=node,
                                  provider=self._collection)
                out.extend(normalize_result(
                    _evaluate(plan.residual, context)))
            plan_node.add(rows_in=len(matches), rows_out=len(out))
        return out

    def _run_accelerated(self, index: dict[str, list[Node]], value: str,
                         relative_query: str, params: dict) -> list[str]:
        out: list[str] = []
        for node in index.get(value, []):
            result = self._xquery.execute(relative_query, self._collection,
                                          variables=dict(params),
                                          context_item=node)
            out.extend(normalize_result(result))
        return out

    # -- update workload -------------------------------------------------------

    def insert_document(self, name: str, text: str) -> None:
        """Parse and add one document, maintaining value indexes."""
        document = materialize(name, text)
        self._collection.add(document)
        self._plan_cache.clear()
        for path, index in self._indexes.items():
            self._index_document(path, index, document)

    def delete_document(self, name: str) -> None:
        """Detach one document and purge its index entries."""
        document = self._collection.remove(name)
        self._plan_cache.clear()
        for index in self._indexes.values():
            for value in list(index):
                nodes = [node for node in index[value]
                         if node.root() is not document]
                if nodes:
                    index[value] = nodes
                else:
                    del index[value]

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        """In-place tree edit of the matched documents' target elements."""
        anchors = self._match_anchors(id_path, id_value)
        changed = 0
        for anchor in anchors:
            scope = anchor if isinstance(anchor, Element) else None
            if scope is None:
                continue
            targets = [scope] if scope.tag == target_tag else \
                list(scope.descendant_elements(target_tag))
            for target in targets:
                self._retarget_indexes(target, new_value)
                had_elements = target.has_element_children()
                # Swap the children list in one assignment so concurrent
                # readers never observe the emptied intermediate state.
                replacement = Text(new_value)
                replacement.parent = target
                target.children = [replacement]
                changed += 1
                if had_elements:
                    # Elements were removed: the cached structural
                    # summary (and any plan derived from it) is stale.
                    document = target.document
                    if document is not None:
                        document.invalidate_summary()
                    self._plan_cache.clear()
        return changed

    def _match_anchors(self, id_path: str, id_value: str) -> list[Node]:
        """Elements matching ``id_path = id_value`` (via index if built)."""
        index = self._indexes.get(id_path)
        if index is not None:
            return list(index.get(id_value, ()))
        matches: list[Node] = []
        scratch: dict[str, list[Node]] = {}
        for document in self._collection.collection():
            self._index_document(id_path, scratch, document)
        return scratch.get(id_value, matches)

    def _retarget_indexes(self, element: Element, new_value: str) -> None:
        """Move index entries keyed by the element's old text value."""
        for path, index in self._indexes.items():
            if "/@" in path or path.split("/")[-1] != element.tag:
                continue
            old_value = element.text_content()
            nodes = index.get(old_value, [])
            if element in nodes:
                nodes.remove(element)
                if not nodes:
                    index.pop(old_value, None)
                index.setdefault(new_value, []).append(element)

    # exposed for tests / examples ------------------------------------------

    def documents(self) -> list[Document]:
        """The loaded documents (for oracle checks)."""
        return self._collection.collection()

    def export_documents(self) -> list[Document]:
        """Current document trees for checkpoint snapshots."""
        return self._collection.collection()

    def run_xquery(self, text: str, params: dict | None = None) -> list:
        """Run arbitrary XQuery against the loaded database."""
        context_item = None
        if self.db_class is not None and self.db_class.single_document:
            context_item = self._collection.collection()[0]
        return self._xquery.execute(text, self._collection,
                                    variables=dict(params or {}),
                                    context_item=context_item)

    def _adhoc(self, text: str, params: dict) -> list[str]:
        return normalize_result(self.run_xquery(text, params))

    def execute_per_document(self, qid: str, params: dict,
                             names: list[str]
                             ) -> list[tuple[str, list[str]]]:
        """Evaluate ``qid`` once per named document.

        Each evaluation sees a collection view of exactly one main
        document plus every ambient document (those not listed in
        ``names`` — the replicated flat tables of DC/MD), so queries that
        join against ``doc('customer.xml')`` still resolve.  Document
        order *within* each view follows the global serials assigned at
        parse time, so per-document results concatenated in ``names``
        order reproduce a whole-collection scan exactly.
        """
        assert self.db_class is not None
        text = QUERIES_BY_ID[qid].text_for(self.db_class.key)
        documents = self._collection.collection()
        mains = set(names)
        by_name = {doc.name: doc for doc in documents}
        ambient = [doc for doc in documents if doc.name not in mains]
        _obs_count("native.per_document_evals", len(names))
        out: list[tuple[str, list[str]]] = []
        for name in names:
            main = by_name.get(name)
            if main is None:
                out.append((name, []))
                continue
            view = StaticCollection(
                [doc for doc in documents
                 if doc is main or doc.name not in mains]
                if ambient else [main])
            result = self._xquery.execute(text, view,
                                          variables=dict(params),
                                          context_item=None)
            out.append((name, normalize_result(result)))
        return out


def normalize_result(items: list) -> list[str]:
    """Engine-neutral result normalization: nodes serialize, atoms print."""
    out = []
    for item in items:
        if isinstance(item, (Element, Document)):
            out.append(serialize(item))
        elif isinstance(item, Attribute):
            out.append(item.value)
        elif isinstance(item, Node):
            out.append(item.string_value())
        else:
            out.append(string_value(item))
    return out
