"""The two shredding relational engines: DB2 Xcollection and SQL Server.

Both shred documents into relational tables via :mod:`.shredding` and run
the hand-translated plans of :mod:`.translation`.  They differ in the ways
the paper describes:

* **Xcollection** (DB2 XML Extender, XML collection mode): DAD-driven
  shredding; keeps mixed-content text; cannot decompose more than 1024
  rows per document, which in practice restricted the single-document
  classes to the 10 MB (small) scale — larger SD databases raise
  :class:`UnsupportedConfiguration` exactly like the paper's "-" cells.

* **SQL Server** (SQLXML 3.0 bulk load): annotated-XSD mapping with a
  mapping-verification pass during load (slower bulk loading), and mixed
  content cannot be mapped at all (the paper's problem #3) — mixed text is
  dropped, so queries touching it return incomplete results, which the
  paper explicitly tolerates ("some of the queries ... may not generate
  correct results, even though we report their performance").
"""

from __future__ import annotations

from ..databases.base import DatabaseClass
from ..errors import UnsupportedConfiguration, UnsupportedOperation, \
    UnsupportedQuery
from ..obs.recorder import plan_node as _obs_plan_node
from ..xml.nodes import Element
from ..xml.binary import materialize
from .base import Engine, LoadStats
from .shredding import ShreddedStore, ShredPlan
from .translation import has_plan, run_plan

# DB2 XML Extender: max rows per decomposed document.  Scaled by the same
# divisor as the database sizes so the restriction bites where it did in
# the paper (SD classes beyond the small scale).
XCOLLECTION_ROW_LIMIT = 1024


class ShreddedEngine(Engine):
    """Shared machinery of the two relational engines."""

    keep_mixed_text = True
    validate_mapping = False

    def __init__(self) -> None:
        super().__init__()
        self.store = ShreddedStore(keep_mixed_text=self.keep_mixed_text)
        self._index_paths: list[str] = []

    def bulk_load(self, db_class: DatabaseClass,
                  texts: list[tuple[str, str]]) -> LoadStats:
        self.store = ShreddedStore(keep_mixed_text=self.keep_mixed_text)
        plans = [self.store.register_schema(schema)
                 for schema in db_class.schemas()]
        plans_by_root = {plan.root_tag: plan for plan in plans}
        rows = 0
        for name, text in texts:
            document = materialize(name, text)
            if self.validate_mapping:
                plan = plans_by_root.get(document.root_element.tag)
                if plan is not None:
                    _verify_mapping(document.root_element, plan)
            rows += self.store.shred_document(document)
        # Relational DBMSs create pk/fk indexes automatically while
        # bulk loading (paper Section 3.1): part of the timed load.
        self.store.build_key_indexes()
        return LoadStats(rows=rows,
                         notes=[f"{len(plans)} mapping(s), "
                                f"{rows} shredded rows"])

    def relational_database(self):
        return self.store.database

    def create_indexes(self, paths: list[str]) -> None:
        self._index_paths = list(paths)
        for path in paths:
            table, column = self._resolve_path(path)
            self.store.database.create_index(table, column, "sorted")

    def drop_indexes(self) -> None:
        """Drop the user value indexes, keeping the automatic pk/fk ones."""
        for path in self._index_paths:
            table, column = self._resolve_path(path)
            self.store.database.indexes.pop((table, column), None)
        self._index_paths = []

    def _release(self) -> None:
        """Drop the shredded tables (and their indexes) entirely."""
        self.store = ShreddedStore(keep_mixed_text=self.keep_mixed_text)
        self._index_paths = []

    def _resolve_path(self, path: str) -> tuple[str, str]:
        """Map a Table 3 path to (table, column) in the shredded store."""
        if "/@" in path:
            tag, __, attr = path.partition("/@")
            for plan in self.store.plans.values():
                for record in plan.records:
                    if record.schema_node.name != tag:
                        continue
                    for candidate in (attr, attr + "_c"):
                        if candidate in record.columns:
                            return record.table_name, candidate
        else:
            for plan in self.store.plans.values():
                for record in plan.records:
                    if path in record.columns:
                        return record.table_name, path
        raise UnsupportedQuery(
            f"{self.row_label}: cannot resolve index path {path!r}")

    def execute(self, qid: str, params: dict) -> list[str]:
        self._require_loaded()
        assert self.db_class is not None
        class_key = self.db_class.key
        if not has_plan(qid, class_key):
            raise UnsupportedQuery(
                f"{self.row_label}: no SQL translation for {qid} "
                f"on {class_key}")
        with _obs_plan_node("relational.translated_plan",
                            qid=qid) as plan_node:
            values = run_plan(self.store, qid, class_key, params)
            plan_node.add(rows_out=len(values))
        return values

    # -- update workload --------------------------------------------------------

    def insert_document(self, name: str, text: str) -> None:
        """Parse and shred one new document; indexes are maintained
        incrementally (the store is live after bulk loading)."""
        document = materialize(name, text)
        self.store.shred_document(document)

    def delete_document(self, name: str) -> None:
        """DELETE ... WHERE doc = name across the mapped tables."""
        self.store.delete_document(name)

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        """UPDATE t SET target = ? WHERE key = ? on the shredded row.

        Only targets that the mapping folded into the *same* record row
        as the key are supported (e.g. an order's status); anything else
        would need the full recursive re-shred a real DAD update does.
        """
        table_name, key_column = self._resolve_path(id_path)
        target_column = self._resolve_folded_column(table_name,
                                                    target_tag)
        table = self.store.database.table(table_name)
        changed = 0
        index = self.store.database.index_for(table_name, key_column)
        if index is not None:
            row_ids = index.lookup(id_value)
        else:
            row_ids = [row_id for row_id, row in table.scan()
                       if row[table.offset(key_column)] == id_value]
        for row_id in row_ids:
            self.store.database.update_cell(table_name, row_id,
                                            target_column, new_value)
            changed += 1
        return changed

    def _resolve_folded_column(self, table_name: str,
                               target_tag: str) -> str:
        """Find the column a folded element maps to, by exact name or
        by flattened-path suffix (``order_status`` ->
        ``shipping_information_delivery_order_status``)."""
        for plan in self.store.plans.values():
            for record in plan.records:
                if record.table_name != table_name:
                    continue
                if target_tag in record.columns:
                    return target_tag
                for column in record.columns:
                    if column.endswith("_" + target_tag):
                        return column
        raise UnsupportedOperation(
            f"{self.row_label}: {target_tag!r} is not folded into "
            f"table {table_name!r}")


def _verify_mapping(element: Element, plan: ShredPlan) -> int:
    """SQLXML-style annotated-schema verification pass.

    Walks the document checking each element is reachable in the mapping;
    returns the number of elements visited.  This is the extra work SQL
    Server's bulk loader does compared to DB2's DAD loader (which, the
    paper notes, does not use schema metadata).
    """
    known_tags = set()
    for record in plan.records:
        for node in record.schema_node.walk():
            known_tags.add(node.name)

    visited = 0
    stack = [element]
    while stack:
        current = stack.pop()
        visited += 1
        __ = current.tag in known_tags
        for child in current.child_elements():
            stack.append(child)
    return visited


class XCollectionEngine(ShreddedEngine):
    """DB2 XML Extender in XML-collection (full shredding) mode."""

    key = "xcollection"
    row_label = "Xcollection"
    description = "DB2 XML Extender, XML collection (DAD shredding)"
    keep_mixed_text = True
    validate_mapping = False

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        if db_class.single_document and scale_name != "small":
            raise UnsupportedConfiguration(
                "DB2 Xcollection limits a decomposed document to "
                f"{XCOLLECTION_ROW_LIMIT} rows per table; single-document "
                "databases beyond the small scale exceed it (paper "
                "Section 3.1.3, problem 5)")


class SqlServerEngine(ShreddedEngine):
    """SQL Server 2000 with SQLXML 3.0 bulk loading."""

    key = "sqlserver"
    row_label = "SQL Server"
    description = "SQL Server + SQLXML annotated-XSD shredding"
    keep_mixed_text = False          # mixed content cannot be mapped
    validate_mapping = True          # XSD mapping check during load
