"""XBench: a family of XML DBMS benchmarks.

Reproduction of *XBench Benchmark and Performance Testing of XML DBMSs*
(Yao, Özsu, Khandelwal; ICDE 2004), built entirely in Python: XML document
model and parser, an XQuery engine, a ToXgene-style synthetic data
generator, the TPC-W relational substrate and mappings, four DBMS storage
architecture analogues, the 20-query workload and the full benchmark
harness.

Quickstart::

    from repro import XBench, BenchmarkConfig, format_suite

    bench = XBench(BenchmarkConfig(scale_divisor=2000,
                                   scale_names=("small",)))
    suite = bench.run_suite()
    print(format_suite(suite, scale_names=("small",)))
"""

from .core.benchmark import BenchmarkConfig, SuiteResult, XBench
from .core.diagrams import render_all_figures, render_figure
from .core.report import format_suite, format_table
from .core.shard import ShardedEngine
from .databases import ALL_CLASSES, CLASSES_BY_KEY
from .engines import create, make_engines
from .workload import ALL_QUERIES, QUERIES_BY_ID
from .xml import parse_document, serialize
from .xquery import run_query

__version__ = "1.0.0"

__all__ = [
    "BenchmarkConfig",
    "SuiteResult",
    "XBench",
    "render_all_figures",
    "render_figure",
    "format_suite",
    "format_table",
    "ALL_CLASSES",
    "CLASSES_BY_KEY",
    "ShardedEngine",
    "create",
    "make_engines",
    "ALL_QUERIES",
    "QUERIES_BY_ID",
    "parse_document",
    "serialize",
    "run_query",
    "__version__",
]
