"""Seeded probability distributions for the data generator.

The paper's database design fits standard probability distributions to the
statistics of real corpora (Section 2.1.1) and drives the generator from
them.  Each distribution here is a small immutable object with a
``sample(rng)`` method; all randomness flows through an explicit
``random.Random`` so generation is deterministic given a seed.

``minimum``/``maximum`` clamp every draw, mirroring the paper's "for each
distribution parameter, the minimum and maximum values of that distribution
are defined in order to generate finite documents".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence


class Distribution:
    """Base class: a source of clamped numeric samples."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def sample_int(self, rng: random.Random) -> int:
        """A rounded integer draw (used for occurrence counts)."""
        return int(round(self.sample(rng)))


@dataclass(frozen=True)
class Constant(Distribution):
    """Always ``value`` (degenerate distribution)."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on [minimum, maximum]."""

    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise ValueError("uniform: minimum > maximum")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.minimum, self.maximum)


@dataclass(frozen=True)
class UniformInt(Distribution):
    """Uniform integer on [minimum, maximum] inclusive."""

    minimum: int
    maximum: int

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise ValueError("uniform-int: minimum > maximum")

    def sample(self, rng: random.Random) -> float:
        return rng.randint(self.minimum, self.maximum)


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian with clamping."""

    mean: float
    stddev: float
    minimum: float = float("-inf")
    maximum: float = float("inf")

    def sample(self, rng: random.Random) -> float:
        value = rng.gauss(self.mean, self.stddev)
        return min(max(value, self.minimum), self.maximum)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean, clamped."""

    mean: float
    minimum: float = 0.0
    maximum: float = float("inf")

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("exponential: mean must be positive")

    def sample(self, rng: random.Random) -> float:
        value = rng.expovariate(1.0 / self.mean)
        return min(max(value, self.minimum), self.maximum)


@dataclass(frozen=True)
class Zipf(Distribution):
    """Zipf over ranks 1..n with exponent ``skew`` (word frequencies).

    Sampling uses the inverse-CDF over the precomputed normalizer, O(log n)
    per draw via bisection on the cumulative weights.
    """

    n: int
    skew: float = 1.0
    _cumulative: tuple = field(default=(), compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("zipf: n must be >= 1")
        weights = [1.0 / math.pow(rank, self.skew)
                   for rank in range(1, self.n + 1)]
        total = math.fsum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        object.__setattr__(self, "_cumulative", tuple(cumulative))

    def sample(self, rng: random.Random) -> float:
        import bisect
        point = rng.random()
        rank = bisect.bisect_left(self._cumulative, point) + 1
        return min(rank, self.n)


@dataclass(frozen=True)
class Bernoulli(Distribution):
    """1 with probability p, else 0 (optional-element presence)."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("bernoulli: p must be in [0, 1]")

    def sample(self, rng: random.Random) -> float:
        return 1.0 if rng.random() < self.p else 0.0


class Categorical:
    """A weighted choice over arbitrary values (element-value-to-type
    probability distributions in the paper's parameter list)."""

    def __init__(self, values: Sequence, weights: Sequence[float] | None = None):
        if not values:
            raise ValueError("categorical: no values")
        self.values = list(values)
        if weights is None:
            self.weights = None
        else:
            if len(weights) != len(values):
                raise ValueError("categorical: len(weights) != len(values)")
            self.weights = list(weights)

    def sample(self, rng: random.Random):
        if self.weights is None:
            return rng.choice(self.values)
        return rng.choices(self.values, weights=self.weights, k=1)[0]
