"""ToXgene-style template-based synthetic XML data generation."""

from .distributions import (
    Bernoulli,
    Categorical,
    Constant,
    Distribution,
    Exponential,
    Normal,
    Uniform,
    UniformInt,
    Zipf,
)
from .generator import generate_document, generate_element
from .template import (
    AttrTemplate,
    ChildTemplate,
    ElementTemplate,
    GenContext,
    choice,
    date_between,
    decimal_in,
    fixed,
    number_in,
    reference_to,
    sentences,
    sequence_id,
    words,
)
from .text import TextPool, make_vocabulary

__all__ = [
    "Bernoulli",
    "Categorical",
    "Constant",
    "Distribution",
    "Exponential",
    "Normal",
    "Uniform",
    "UniformInt",
    "Zipf",
    "generate_document",
    "generate_element",
    "AttrTemplate",
    "ChildTemplate",
    "ElementTemplate",
    "GenContext",
    "choice",
    "date_between",
    "decimal_in",
    "fixed",
    "number_in",
    "reference_to",
    "sentences",
    "sequence_id",
    "words",
    "TextPool",
    "make_vocabulary",
]
