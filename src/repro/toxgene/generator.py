"""Instantiate templates into XML documents."""

from __future__ import annotations

from ..errors import GenerationError
from ..xml.nodes import Document, Element
from .template import ElementTemplate, GenContext

# Hard cap on generated tree depth; a recursive template with a
# non-terminating occurrence distribution is a template bug, not a reason
# to hang the benchmark.
_MAX_DEPTH = 64


def generate_element(template: ElementTemplate, context: GenContext,
                     _depth: int = 0) -> Element:
    """Generate one element tree from ``template``."""
    if _depth > _MAX_DEPTH:
        raise GenerationError(
            f"template recursion exceeds depth {_MAX_DEPTH} at "
            f"<{template.tag}>")

    element = Element(template.tag)
    rng = context.rng

    for attr in template.attrs:
        if attr.presence >= 1.0 or rng.random() < attr.presence:
            element.set_attribute(attr.name, attr.value(context))

    if template.empty_probability and rng.random() < template.empty_probability:
        return element

    if template.mixed and template.children:
        _generate_mixed(template, element, context, _depth)
        return element

    if template.text is not None:
        text = template.text(context)
        if text:
            element.append_text(text)

    for child in template.children:
        count = max(child.occurs.sample_int(rng), 0)
        for _ in range(count):
            element.append(
                generate_element(child.template, context, _depth + 1))
    return element


def _generate_mixed(template: ElementTemplate, element: Element,
                    context: GenContext, depth: int) -> None:
    """Interleave text fragments and child elements (mixed content)."""
    if template.text is None:
        raise GenerationError(
            f"mixed element <{template.tag}> needs a text generator")
    rng = context.rng
    element.append_text(template.text(context))
    for child in template.children:
        count = max(child.occurs.sample_int(rng), 0)
        for _ in range(count):
            element.append(
                generate_element(child.template, context, depth + 1))
            element.append_text(template.text(context))


def generate_document(template: ElementTemplate, context: GenContext,
                      name: str = "") -> Document:
    """Generate a full document (root from ``template``) named ``name``."""
    document = Document(generate_element(template, context), name=name)
    document.refresh_order()
    return document
