"""Template model for the ToXgene-style generator.

A template is a tree of :class:`ElementTemplate` objects mirroring the
schema diagram of a document class.  Each node carries value generators
(callables over the :class:`GenContext`) for its attributes and text, and
occurrence distributions for its children — the same parameter set the
paper extracts from real corpora: child-occurrence distributions,
element-value distributions, attribute-value distributions and
attribute-presence probabilities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from .distributions import Constant, Distribution
from .text import TextPool

ValueGen = Callable[["GenContext"], str]


class GenContext:
    """Shared state threaded through one generation run.

    Holds the seeded RNG, the text pool, monotone counters for identifier
    generation and pools of already-issued identifiers so templates can
    create *references between entries* (dictionary cross-references,
    article citations) without dangling targets.
    """

    def __init__(self, seed: int = 0, pool: Optional[TextPool] = None) -> None:
        self.rng = random.Random(seed)
        self.pool = pool or TextPool()
        self._counters: dict[str, int] = {}
        self._issued: dict[str, list[str]] = {}

    def next_number(self, key: str) -> int:
        """The next value of the named counter (1-based)."""
        value = self._counters.get(key, 0) + 1
        self._counters[key] = value
        return value

    def issue_id(self, key: str, prefix: str = "") -> str:
        """Mint a fresh identifier and remember it for later references."""
        identifier = f"{prefix}{self.next_number(key)}"
        self._issued.setdefault(key, []).append(identifier)
        return identifier

    def reference(self, key: str) -> Optional[str]:
        """A random already-issued identifier of the given kind, if any."""
        issued = self._issued.get(key)
        if not issued:
            return None
        return self.rng.choice(issued)

    def issued(self, key: str) -> list[str]:
        """All identifiers issued under ``key`` so far."""
        return list(self._issued.get(key, []))


@dataclass
class AttrTemplate:
    """An attribute with a value generator and a presence probability."""

    name: str
    value: ValueGen
    presence: float = 1.0


@dataclass
class ChildTemplate:
    """A child element type with its occurrence distribution."""

    template: "ElementTemplate"
    occurs: Distribution = field(default_factory=lambda: Constant(1))


@dataclass
class ElementTemplate:
    """One element type of a document template.

    ``text`` generates the element's character data; with ``mixed`` True
    the text is split into fragments interleaved between child elements
    (dictionary quotation text, article paragraphs with inline markup).
    ``empty_probability`` produces empty (null-value) instances, the
    irregularity that Q15 probes.
    """

    tag: str
    attrs: list[AttrTemplate] = field(default_factory=list)
    children: list[ChildTemplate] = field(default_factory=list)
    text: Optional[ValueGen] = None
    mixed: bool = False
    empty_probability: float = 0.0

    def attr(self, name: str, value: ValueGen,
             presence: float = 1.0) -> "ElementTemplate":
        """Add an attribute template (chainable)."""
        self.attrs.append(AttrTemplate(name, value, presence))
        return self

    def child(self, template: "ElementTemplate",
              occurs: Optional[Distribution] = None) -> "ElementTemplate":
        """Add a child element type (chainable)."""
        self.children.append(ChildTemplate(template, occurs or Constant(1)))
        return self


# -- value generator combinators ------------------------------------------------

def fixed(value: str) -> ValueGen:
    """Always the same string."""
    return lambda ctx: value


def words(count: Distribution) -> ValueGen:
    """A run of Zipf words, count drawn from ``count``."""
    return lambda ctx: " ".join(
        ctx.pool.words_sample(ctx.rng, max(count.sample_int(ctx.rng), 1)))


def sentences(count: Distribution, words_per_sentence: int = 9) -> ValueGen:
    """A paragraph of sentences."""
    return lambda ctx: ctx.pool.paragraph(
        ctx.rng, max(count.sample_int(ctx.rng), 1), words_per_sentence)


def number_in(dist: Distribution) -> ValueGen:
    """A stringified integer draw."""
    return lambda ctx: str(dist.sample_int(ctx.rng))


def decimal_in(dist: Distribution, digits: int = 2) -> ValueGen:
    """A stringified fixed-point draw."""
    return lambda ctx: f"{dist.sample(ctx.rng):.{digits}f}"


def date_between(first_year: int, last_year: int) -> ValueGen:
    """An ISO date within the year range."""
    from .text import random_date
    return lambda ctx: random_date(ctx.rng, first_year, last_year)


def choice(values: list[str],
           weights: Optional[list[float]] = None) -> ValueGen:
    """A weighted categorical value."""
    def gen(ctx: GenContext) -> str:
        if weights is None:
            return ctx.rng.choice(values)
        return ctx.rng.choices(values, weights=weights, k=1)[0]
    return gen


def sequence_id(key: str, prefix: str = "") -> ValueGen:
    """A fresh identifier from the context counter (also recorded for
    back-references)."""
    return lambda ctx: ctx.issue_id(key, prefix)


def reference_to(key: str, fallback: str = "") -> ValueGen:
    """A reference to a previously issued identifier of kind ``key``."""
    def gen(ctx: GenContext) -> str:
        target = ctx.reference(key)
        return target if target is not None else fallback
    return gen
