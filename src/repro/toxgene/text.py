"""Synthetic text: a deterministic vocabulary plus sentence generators.

The real XBench corpora (GCIDE, OED, Reuters, Springer) are proprietary, so
text content is synthesized from a pseudo-word vocabulary whose frequencies
follow a Zipf law — the same qualitative shape as natural-language word
frequencies.  The workload's search terms (``word_1``, ``word_2``, ...) are
planted as ordinary vocabulary entries so text-search queries (Q17/Q18) hit
a controllable fraction of the data.
"""

from __future__ import annotations

import random

from .distributions import Zipf

# Syllable inventory used to mint pseudo-words deterministically.
_ONSETS = ["b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j",
           "k", "l", "m", "n", "p", "pl", "qu", "r", "s", "sh", "st", "t",
           "th", "tr", "v", "w", "z"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ou", "io"]
_CODAS = ["", "n", "r", "s", "t", "l", "m", "nd", "st", "ck"]


def make_vocabulary(size: int) -> list[str]:
    """Deterministically mint ``size`` distinct pseudo-words.

    Words are enumerated in a fixed syllable order, so the same size always
    yields the same vocabulary, independent of any RNG.
    """
    words: list[str] = []
    seen: set[str] = set()
    syllables = [onset + nucleus + coda
                 for onset in _ONSETS
                 for nucleus in _NUCLEI
                 for coda in _CODAS]
    index = 0
    while len(words) < size:
        first = syllables[index % len(syllables)]
        second = syllables[(index * 7 + index // len(syllables))
                           % len(syllables)]
        word = first if index < len(syllables) else first + second
        index += 1
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class TextPool:
    """Zipf-weighted word sampler with planted search-target words.

    ``target_words`` (``word_1`` .. ``word_k``) are spliced into the middle
    ranks of the vocabulary: common enough that queries on them return
    non-trivial results, rare enough that they are selective.
    """

    def __init__(self, vocabulary_size: int = 2000, target_count: int = 10,
                 skew: float = 1.05) -> None:
        base = make_vocabulary(vocabulary_size)
        self.targets = [f"word_{index}" for index in range(1, target_count + 1)]
        # Plant targets in the upper-middle ranks (the first quarter of the
        # vocabulary) so text-search queries are selective but hit at small
        # scales too.
        step = max(len(base) // (4 * (target_count + 1)), 1)
        for position, target in enumerate(self.targets, start=1):
            slot = min(position * step, len(base) - 1)
            base.insert(slot, target)
        self.words = base
        self._zipf = Zipf(len(self.words), skew)

    def word(self, rng: random.Random) -> str:
        """One Zipf-distributed word."""
        rank = int(self._zipf.sample(rng))
        return self.words[rank - 1]

    def words_sample(self, rng: random.Random, count: int) -> list[str]:
        return [self.word(rng) for _ in range(count)]

    def sentence(self, rng: random.Random, word_count: int) -> str:
        """A capitalized, period-terminated sentence."""
        tokens = self.words_sample(rng, max(word_count, 1))
        tokens[0] = tokens[0].capitalize()
        return " ".join(tokens) + "."

    def paragraph(self, rng: random.Random, sentence_count: int,
                  words_per_sentence: int = 9) -> str:
        """A paragraph of ``sentence_count`` sentences."""
        return " ".join(self.sentence(rng, words_per_sentence)
                        for _ in range(sentence_count))

    def phrase(self, rng: random.Random, length: int = 2) -> str:
        """An n-gram for phrase search (Q18)."""
        return " ".join(self.words_sample(rng, length))


# Names / titles / places reused across generators so value distributions
# are consistent between the TC and DC classes.
FIRST_NAMES = [
    "alice", "benjamin", "carla", "daniel", "elena", "felix", "grace",
    "henry", "irene", "jonas", "katrin", "liam", "maria", "nolan",
    "olivia", "pavel", "quinn", "rosa", "stefan", "tamara", "ulrich",
    "vera", "walter", "xenia", "yusuf", "zelda",
]
LAST_NAMES = [
    "anders", "brandt", "chen", "dimitrov", "evans", "fischer", "garcia",
    "hoffman", "ivanov", "jensen", "keller", "lindgren", "moreau",
    "novak", "olsen", "petrov", "quist", "rossi", "schmidt", "tanaka",
    "ueda", "varga", "weber", "xu", "yamamoto", "zhang",
]
COUNTRIES = [
    "Canada", "United States", "Germany", "France", "United Kingdom",
    "Japan", "Brazil", "Australia", "Netherlands", "Sweden", "Italy",
    "Spain", "China", "India", "Mexico",
]
CITIES = [
    "Waterloo", "Toronto", "Boston", "Berlin", "Lyon", "Cambridge",
    "Osaka", "Recife", "Sydney", "Utrecht", "Uppsala", "Torino",
    "Valencia", "Shanghai", "Pune", "Puebla",
]
SUBJECTS = [
    "databases", "networks", "compilers", "algorithms", "graphics",
    "security", "systems", "learning", "logic", "languages",
]


def person_name(rng: random.Random) -> tuple[str, str]:
    """A (first, last) name pair, capitalized."""
    return (rng.choice(FIRST_NAMES).capitalize(),
            rng.choice(LAST_NAMES).capitalize())


def random_date(rng: random.Random, first_year: int = 1990,
                last_year: int = 2003) -> str:
    """An ISO ``YYYY-MM-DD`` date within the given years."""
    year = rng.randint(first_year, last_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def phone_number(rng: random.Random) -> str:
    return (f"+{rng.randint(1, 99)}-{rng.randint(100, 999)}-"
            f"{rng.randint(1000000, 9999999)}")


def email_address(rng: random.Random, first: str, last: str) -> str:
    domain = rng.choice(["example.org", "example.com", "mail.example.net"])
    return f"{first.lower()}.{last.lower()}@{domain}"
