"""Typed request/response/session surface shared by client, server and CLI.

Every hop of the serving stack used to build the same wire dicts by hand:
``server/protocol`` documented them, ``loadgen.ServingClient`` assembled
them, ``cli.py`` assembled them again, and the server unpacked them with
``payload.get(...)`` defaults sprinkled per call site.  This module is the
single definition: frozen dataclasses with explicit defaults, validation
at construction time, and ``to_wire``/``from_wire`` converters so the
JSON framing layer stays dumb.

Old-style wire dicts remain accepted everywhere through the ``from_wire``
shims below — they are a deprecation shim, not a parallel API; new code
should construct the dataclasses directly.

The module also owns the consistency-tier vocabulary for replica reads
(see ``docs/replication.md``):

``strong``
    Primary only.  Always sees every acknowledged write.
``read_your_writes``
    A replica may answer only if it has applied the session's last
    acknowledged write sequence (``min_seq``).
``bounded_staleness``
    A replica may answer if it is at most ``max_lag`` acknowledged
    writes behind the primary.
``eventual``
    Any live replica may answer, regardless of lag.

Only :mod:`repro.errors` may be imported here; everything else imports
*us* (the shard engine reads the thread-local scope, the server parses
requests, the client serializes them).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from .errors import ConsistencyError

CONSISTENCY_TIERS = ("strong", "read_your_writes", "bounded_staleness",
                     "eventual")


@dataclass(frozen=True)
class Consistency:
    """A consistency tier plus its arguments.

    ``max_lag`` only applies to ``bounded_staleness`` (maximum number of
    acknowledged writes a replica may be behind).  ``min_seq`` only
    applies to ``read_your_writes`` (the session's last acknowledged
    write sequence; ``0`` means "no writes yet", which any replica
    satisfies).
    """

    tier: str = "strong"
    max_lag: int = 0
    min_seq: int = 0

    def __post_init__(self):
        if self.tier not in CONSISTENCY_TIERS:
            raise ConsistencyError(
                f"unknown consistency tier {self.tier!r}; "
                f"expected one of {', '.join(CONSISTENCY_TIERS)}")
        if self.max_lag < 0:
            raise ConsistencyError(
                f"bounded_staleness max_lag must be >= 0, got {self.max_lag}")
        if self.min_seq < 0:
            raise ConsistencyError(
                f"read_your_writes min_seq must be >= 0, got {self.min_seq}")

    @classmethod
    def parse(cls, value) -> "Consistency":
        """Accept a Consistency, ``None``, a tier string (optionally
        ``bounded_staleness:K``), or a wire dict."""
        if value is None:
            return STRONG
        if isinstance(value, Consistency):
            return value
        if isinstance(value, dict):
            return cls.from_wire(value)
        if isinstance(value, str):
            tier, _, arg = value.partition(":")
            tier = tier.strip()
            if not arg:
                return cls(tier=tier)
            try:
                number = int(arg)
            except ValueError:
                raise ConsistencyError(
                    f"bad consistency argument {arg!r} in {value!r}") from None
            if tier == "bounded_staleness":
                return cls(tier=tier, max_lag=number)
            if tier == "read_your_writes":
                return cls(tier=tier, min_seq=number)
            raise ConsistencyError(
                f"tier {tier!r} takes no {arg!r} argument")
        raise ConsistencyError(
            f"cannot parse consistency from {type(value).__name__}")

    def with_min_seq(self, min_seq: int) -> "Consistency":
        return replace(self, min_seq=min_seq)

    def to_wire(self) -> dict:
        wire = {"tier": self.tier}
        if self.max_lag:
            wire["max_lag"] = self.max_lag
        if self.min_seq:
            wire["min_seq"] = self.min_seq
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "Consistency":
        if not isinstance(wire, dict):
            raise ConsistencyError(
                f"consistency wire form must be a dict, got "
                f"{type(wire).__name__}")
        return cls(tier=wire.get("tier", "strong"),
                   max_lag=int(wire.get("max_lag", 0)),
                   min_seq=int(wire.get("min_seq", 0)))


STRONG = Consistency(tier="strong")
EVENTUAL = Consistency(tier="eventual")


def read_your_writes(min_seq: int = 0) -> Consistency:
    return Consistency(tier="read_your_writes", min_seq=min_seq)


def bounded_staleness(max_lag: int) -> Consistency:
    return Consistency(tier="bounded_staleness", max_lag=max_lag)


_SCOPE = threading.local()


def current_consistency() -> Consistency | None:
    """The consistency requested by the innermost active scope, if any."""
    return getattr(_SCOPE, "value", None)


@contextmanager
def consistency_scope(consistency):
    """Thread-local scope the shard engine consults when routing reads."""
    resolved = Consistency.parse(consistency)
    previous = getattr(_SCOPE, "value", None)
    _SCOPE.value = resolved
    try:
        yield resolved
    finally:
        _SCOPE.value = previous


@dataclass(frozen=True)
class SessionOptions:
    """Everything a ``hello`` establishes for a server session."""

    engine: str = "native"
    class_key: str = "dcsd"
    units: int = 50
    shards: int = 0
    replicas: int = 0
    tenant: str = "default"
    consistency: Consistency = STRONG
    deadline: float | None = None
    trace: bool = False

    def __post_init__(self):
        if not isinstance(self.consistency, Consistency):
            object.__setattr__(self, "consistency",
                               Consistency.parse(self.consistency))
        if self.shards < 0:
            raise ConsistencyError(f"shards must be >= 0, got {self.shards}")
        if self.replicas < 0:
            raise ConsistencyError(
                f"replicas must be >= 0, got {self.replicas}")
        if self.replicas and self.shards < 2:
            raise ConsistencyError(
                "replicas require a sharded engine (shards >= 2)")

    def to_wire(self) -> dict:
        wire = {"op": "hello", "engine": self.engine, "class": self.class_key,
                "units": self.units, "shards": self.shards,
                "tenant": self.tenant}
        if self.replicas:
            wire["replicas"] = self.replicas
        if self.consistency != STRONG:
            wire["consistency"] = self.consistency.to_wire()
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.trace:
            wire["trace"] = True
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "SessionOptions":
        # Deprecated entry point for raw hello dicts; prefer constructing
        # SessionOptions directly.
        return cls(engine=payload.get("engine", "native"),
                   class_key=payload.get("class", "dcsd"),
                   units=int(payload.get("units", 50)),
                   shards=int(payload.get("shards", 0)),
                   replicas=int(payload.get("replicas", 0)),
                   tenant=str(payload.get("tenant", "default")),
                   consistency=Consistency.parse(payload.get("consistency")),
                   deadline=payload.get("deadline"),
                   trace=bool(payload.get("trace", False)))


@dataclass(frozen=True)
class QueryRequest:
    """One query (or update) as the server admission layer sees it."""

    qid: str
    params: dict = field(default_factory=dict)
    deadline: float | None = None
    tenant: str | None = None
    consistency: Consistency | None = None
    trace: bool = False

    def __post_init__(self):
        if (self.consistency is not None
                and not isinstance(self.consistency, Consistency)):
            object.__setattr__(self, "consistency",
                               Consistency.parse(self.consistency))

    def to_wire(self) -> dict:
        wire = {"op": "query", "qid": self.qid}
        if self.params:
            wire["params"] = dict(self.params)
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.tenant is not None:
            wire["tenant"] = self.tenant
        if self.consistency is not None:
            wire["consistency"] = self.consistency.to_wire()
        if self.trace:
            wire["trace"] = True
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "QueryRequest":
        # Deprecated entry point for raw query dicts; prefer constructing
        # QueryRequest directly.
        consistency = payload.get("consistency")
        return cls(qid=str(payload.get("qid", "")),
                   params=dict(payload.get("params") or {}),
                   deadline=payload.get("deadline"),
                   tenant=payload.get("tenant"),
                   consistency=(None if consistency is None
                                else Consistency.parse(consistency)),
                   trace=bool(payload.get("trace", False)))


@dataclass(frozen=True)
class QueryResponse:
    """A settled query: either rows or a typed error, never both."""

    ok: bool
    qid: str = ""
    rows: int = 0
    seconds: float = 0.0
    queued_ms: float = 0.0
    ttfr_ms: float | None = None
    tenant: str = "default"
    partial: bool = False
    error: str | None = None
    message: str | None = None
    trace_id: str | None = None
    seq: int = 0

    def to_wire(self) -> dict:
        if not self.ok:
            wire = {"ok": False, "error": self.error or "ServerError",
                    "message": self.message or ""}
            if self.trace_id:
                wire["trace_id"] = self.trace_id
            return wire
        wire = {"ok": True, "qid": self.qid, "rows": self.rows,
                "seconds": self.seconds, "queued_ms": self.queued_ms,
                "tenant": self.tenant, "partial": self.partial}
        if self.ttfr_ms is not None:
            wire["ttfr_ms"] = self.ttfr_ms
        if self.trace_id:
            wire["trace_id"] = self.trace_id
        if self.seq:
            wire["seq"] = self.seq
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "QueryResponse":
        # Deprecated entry point for raw reply dicts; prefer the typed
        # client methods that return QueryResponse.
        return cls(ok=bool(payload.get("ok")),
                   qid=str(payload.get("qid", "")),
                   rows=int(payload.get("rows", 0)),
                   seconds=float(payload.get("seconds", 0.0)),
                   queued_ms=float(payload.get("queued_ms", 0.0)),
                   ttfr_ms=payload.get("ttfr_ms"),
                   tenant=str(payload.get("tenant", "default")),
                   partial=bool(payload.get("partial", False)),
                   error=payload.get("error"),
                   message=payload.get("message"),
                   trace_id=payload.get("trace_id"),
                   seq=int(payload.get("seq", 0)))
