"""Open- and closed-loop load drivers with warm-up/measure windows.

The two canonical load shapes (YCSB/Benchbase lineage):

* **Closed loop** — N concurrent sessions, each issuing its next query
  when the previous answer returns (optionally after a think time).
  Offered load adapts to the server: classic interactive-user model,
  measures peak sustainable throughput.
* **Open loop** — arrivals fire from a seeded Poisson process at a
  configured rate regardless of completions: the internet-traffic
  model that actually exposes tail latency and overload behaviour.
  Latency is measured from the request's *scheduled arrival time*, not
  its send time, so client-side backlog cannot hide server queueing
  (the coordinated-omission correction).

Every trial runs ``warmup_seconds`` of untimed traffic before the
measurement window; only requests scheduled inside the window feed the
reported counts and percentiles.  :func:`run_rate_sweep` walks a list
of open-loop rates to trace the throughput-vs-P99 curve into the
``BENCH_serving.json`` artifact (the saturation knee).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field

from ..errors import BenchmarkError
from ..obs import LatencyHistogram
from ..obs import recorder as _obs
from ..obs import trace as _trace
from ..workload import bind_params
from ..workload.queries import EXPERIMENT_QUERIES, QUERIES_BY_ID
from .client import ServingClient

#: response error types counted as load shedding (not failures).
_REJECTED_TYPES = ("ServerOverloaded", "ServerDraining")


@dataclass
class LoadConfig:
    """Knobs of one load trial."""

    host: str = "127.0.0.1"
    port: int = 0
    engine: str = "native"
    class_key: str = "dcmd"
    units: int = 24
    shards: int = 0
    #: read replicas per shard (requires shards >= 2).
    replicas: int = 0
    #: consistency tier reads run under ("strong", "eventual",
    #: "bounded_staleness:K", "read_your_writes").
    consistency: str = "strong"
    #: ``"closed"`` or ``"open"``.
    mode: str = "closed"
    #: open-loop arrival rate (requests/second).
    rate: float = 20.0
    #: closed-loop session count; open-loop in-flight worker cap.
    streams: int = 4
    #: closed-loop think time between a reply and the next request.
    think_seconds: float = 0.0
    warmup_seconds: float = 0.5
    measure_seconds: float = 2.0
    seed: int = 17
    #: per-request deadline sent to the server (None = none).
    deadline: float | None = None
    #: interleave one acknowledged write (the ``update`` verb) every N
    #: requests (0 = reads only).  Acked writes are collected run-wide
    #: as ``(seq, id, value)`` — the raw material of the crash-recovery
    #: zero-lost-acknowledged-writes gate.
    update_every: int = 0
    #: arrival mix of tenants: (name, share) pairs.
    tenants: tuple = (("default", 1.0),)
    query_ids: tuple = EXPERIMENT_QUERIES

    @property
    def total_seconds(self) -> float:
        return self.warmup_seconds + self.measure_seconds


class _RequestMix:
    """Seeded infinite (tenant, qid, params) stream for one worker."""

    def __init__(self, config: LoadConfig, seed: int) -> None:
        self._rng = random.Random(seed)
        self._config = config
        self._applicable = [
            qid for qid in config.query_ids
            if QUERIES_BY_ID[qid].applies_to(config.class_key)]
        if not self._applicable:
            raise BenchmarkError(
                f"no queries of the mix apply to "
                f"{config.class_key!r}")
        names = [name for name, __ in config.tenants]
        shares = [max(0.0, share) for __, share in config.tenants]
        if not any(shares):
            shares = [1.0] * len(names)
        self._tenants = names
        self._shares = shares

    def next(self) -> tuple[str, str, dict]:
        config = self._config
        qid = self._rng.choice(self._applicable)
        params = dict(bind_params(qid, config.class_key, config.units))
        if "id" in params:
            # Distinct simulated users hit distinct point targets.
            params["id"] = str(self._rng.randint(1, config.units))
        tenant = self._rng.choices(self._tenants,
                                   weights=self._shares)[0]
        return tenant, qid, params

    def next_update(self) -> tuple[str, str, str]:
        """Seeded (tenant, id, value) for one acknowledged write."""
        config = self._config
        ident = str(self._rng.randint(1, config.units))
        value = f"tok{self._rng.randrange(16 ** 6):06x}"
        tenant = self._rng.choices(self._tenants,
                                   weights=self._shares)[0]
        return tenant, ident, value


@dataclass
class _Outcome:
    """One request's classified result."""

    tenant: str
    qid: str
    kind: str                  # ok | rejected | timeout | error
    latency: float = 0.0       # seconds, from scheduled arrival
    scheduled: float = 0.0     # monotonic scheduled arrival
    partial: bool = False
    #: server-reported decomposition of a successful reply: service
    #: seconds, admission-queue wait and time-to-first-result — the
    #: raw material of the client-vs-server latency split.
    server_seconds: float | None = None
    queued_ms: float | None = None
    ttfr_ms: float | None = None
    #: acknowledged-write bookkeeping (``qid == "update"`` outcomes):
    #: the target id, the written value, and the committed seq the
    #: server acknowledged with.
    update_id: str | None = None
    update_value: str | None = None
    seq: int | None = None


@dataclass
class _TenantStats:
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    latencies: LatencyHistogram = field(
        default_factory=LatencyHistogram)

    def record(self) -> dict:
        return {"completed": self.completed, "rejected": self.rejected,
                "timeouts": self.timeouts, "errors": self.errors,
                "latency": self.latencies.summary()}


@dataclass
class TrialResult:
    """One trial's scorecard (measurement window unless noted)."""

    mode: str
    target_rate: float | None
    config: LoadConfig
    offered: int = 0            # scheduled/sent inside the window
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    partials: int = 0
    errors: int = 0
    total_requests: int = 0     # whole run, warm-up included
    wall_seconds: float = 0.0
    latencies: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    per_tenant: dict = field(default_factory=dict)
    #: client-vs-server latency decomposition, from the fields traced
    #: replies carry: server execute time, admission-queue wait,
    #: time-to-first-result, and the client-side remainder
    #: (network + framing + client scheduling).
    server_seconds: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    queue_seconds: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    overhead_seconds: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    ttfr_seconds: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    #: acknowledged writes interleaved by ``update_every`` (window).
    updates_sent: int = 0
    updates_acked: int = 0
    #: every acked write of the whole run (warm-up included) as
    #: ``(seq, id, value)`` — the lost-write gate must cover every
    #: acknowledgement, not just the measurement window.
    acked_updates: list = field(default_factory=list)
    #: sent-but-unacknowledged writes as ``(id, value)``: the ack was
    #: lost (connection died, timeout, rejection) so the write is
    #: *indeterminate* — it may or may not have committed.  A recovery
    #: gate must accept either outcome for these.
    unacked_updates: list = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        measure = self.config.measure_seconds
        if measure <= 0:
            return 0.0
        return self.completed / measure

    @property
    def achieved_rate(self) -> float:
        measure = self.config.measure_seconds
        if measure <= 0:
            return 0.0
        return self.offered / measure

    @property
    def success_pct(self) -> float:
        if not self.offered:
            return 100.0
        return 100.0 * self.completed / self.offered

    def record(self) -> dict:
        """JSON-ready scorecard (for BENCH_serving.json)."""
        return {
            "mode": self.mode,
            "target_rate": self.target_rate,
            "replicas": self.config.replicas,
            "consistency": self.config.consistency,
            "streams": self.config.streams,
            "think_seconds": self.config.think_seconds,
            "warmup_seconds": self.config.warmup_seconds,
            "measure_seconds": self.config.measure_seconds,
            "seed": self.config.seed,
            "deadline": self.config.deadline,
            "offered": self.offered,
            "achieved_rate": round(self.achieved_rate, 3),
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "partials": self.partials,
            "errors": self.errors,
            "success_pct": round(self.success_pct, 3),
            "throughput_qps": round(self.throughput_qps, 3),
            "total_requests": self.total_requests,
            "updates": {
                "update_every": self.config.update_every,
                "sent": self.updates_sent,
                "acked": self.updates_acked,
                "acked_total": len(self.acked_updates),
                "indeterminate": len(self.unacked_updates),
                "max_acked_seq": max(
                    (seq for seq, __, ___ in self.acked_updates),
                    default=0),
            },
            "wall_seconds": self.wall_seconds,
            "latency": self.latencies.summary(),
            "decomposition": {
                "server": self.server_seconds.summary(),
                "queue": self.queue_seconds.summary(),
                "client_overhead": self.overhead_seconds.summary(),
                "ttfr": self.ttfr_seconds.summary(),
            },
            "per_tenant": {tenant: stats.record()
                           for tenant, stats in
                           sorted(self.per_tenant.items())},
        }

    def summary(self) -> str:
        label = (f"open @ {self.target_rate:g}/s"
                 if self.mode == "open"
                 else f"closed x{self.config.streams}")
        if self.config.replicas:
            label += (f" [+{self.config.replicas}r "
                      f"{self.config.consistency}]")
        lines = [
            f"{label}: {self.offered} offered in "
            f"{self.config.measure_seconds:.1f}s -> "
            f"{self.completed} ok ({self.throughput_qps:.1f} q/s), "
            f"{self.rejected} rejected, {self.timeouts} timeouts, "
            f"{self.partials} partial, {self.errors} errors "
            f"[{self.success_pct:.1f}% success]",
            f"  latency: {self.latencies.format_ms()}",
        ]
        if self.config.update_every:
            lines.append(
                f"  writes: {self.updates_acked}/{self.updates_sent} "
                f"acked in window, {len(self.acked_updates)} acked "
                "run-wide")
        for tenant, stats in sorted(self.per_tenant.items()):
            lines.append(f"  tenant {tenant}: {stats.completed} ok, "
                         f"{stats.rejected} rejected, "
                         f"{stats.latencies.format_ms()}")
        return "\n".join(lines)


def _classify(reply: dict, tenant: str, qid: str, latency: float,
              scheduled: float) -> _Outcome:
    if reply.get("ok"):
        return _Outcome(tenant, qid, "ok", latency, scheduled,
                        partial=bool(reply.get("partial")),
                        server_seconds=reply.get("seconds"),
                        queued_ms=reply.get("queued_ms"),
                        ttfr_ms=reply.get("ttfr_ms"))
    error = reply.get("error", "")
    if error in _REJECTED_TYPES:
        kind = "rejected"
    elif error == "QueryTimeout":
        kind = "timeout"
    else:
        kind = "error"
    return _Outcome(tenant, qid, kind, latency, scheduled)


def _aggregate(config: LoadConfig, mode: str,
               target_rate: float | None, outcomes: list[_Outcome],
               measure_start: float, measure_end: float,
               wall: float) -> TrialResult:
    result = TrialResult(mode, target_rate, config, wall_seconds=wall)
    result.total_requests = len(outcomes)
    for outcome in outcomes:
        if outcome.qid == "update" and outcome.seq is not None:
            # Run-wide, warm-up included: every acknowledgement is a
            # durability promise the recovery gate must verify.
            result.acked_updates.append(
                (outcome.seq, outcome.update_id,
                 outcome.update_value))
        elif outcome.qid == "update" and outcome.update_id is not None:
            result.unacked_updates.append(
                (outcome.update_id, outcome.update_value))
        if not measure_start <= outcome.scheduled < measure_end:
            continue
        result.offered += 1
        if outcome.qid == "update":
            result.updates_sent += 1
            if outcome.kind == "ok":
                result.updates_acked += 1
        stats = result.per_tenant.setdefault(outcome.tenant,
                                             _TenantStats())
        if outcome.kind == "ok":
            result.completed += 1
            stats.completed += 1
            if outcome.partial:
                result.partials += 1
            result.latencies.add(outcome.latency)
            stats.latencies.add(outcome.latency)
            if outcome.server_seconds is not None:
                queued = (outcome.queued_ms or 0.0) / 1000.0
                result.server_seconds.add(outcome.server_seconds)
                result.queue_seconds.add(queued)
                result.overhead_seconds.add(max(
                    0.0, outcome.latency - outcome.server_seconds
                    - queued))
            if outcome.ttfr_ms is not None:
                result.ttfr_seconds.add(outcome.ttfr_ms / 1000.0)
            _obs.record_latency("serving.latency", outcome.latency)
            _obs.record_latency(f"serving.latency.{outcome.tenant}",
                                outcome.latency)
        elif outcome.kind == "rejected":
            result.rejected += 1
            stats.rejected += 1
            _obs.count("serving.rejected")
        elif outcome.kind == "timeout":
            result.timeouts += 1
            stats.timeouts += 1
            _obs.count("serving.timeouts")
        else:
            result.errors += 1
            stats.errors += 1
            _obs.count("serving.errors")
    # Commit order, regardless of which stream carried the ack.
    result.acked_updates.sort()
    return result


def _traced_query(client: ServingClient, config: LoadConfig,
                  qid: str, params: dict,
                  tenant: str | None = None) -> dict:
    """One query, wrapped in a ``client.request`` root span (and sent
    with trace context) when a recorder is active; a plain call
    otherwise, so untraced runs pay nothing."""
    if _obs.active() is None:
        return client.query(qid, params=params,
                            deadline=config.deadline, tenant=tenant)
    ctx = _trace.TraceContext(_trace.new_trace_id())
    with _trace.trace_scope(ctx):
        with _obs.span(_trace.CLIENT_ROOT, qid=qid) as handle:
            wire = {"trace_id": ctx.trace_id,
                    "parent": _trace.gid_of(handle.span.span_id)}
            reply = client.query(qid, params=params,
                                 deadline=config.deadline,
                                 tenant=tenant, trace=wire)
            if reply.get("ttfr_ms") is not None:
                _obs.annotate(ttfr_ms=reply["ttfr_ms"])
    return reply


def _issue_update(client: ServingClient, config: LoadConfig,
                  tenant: str, ident: str, value: str,
                  scheduled: float) -> _Outcome:
    """One acknowledged write, classified like a query (qid
    ``"update"``); an acked outcome carries (seq, id, value) so the
    lost-write gate can replay it against recovered state.  OSError
    propagates — the caller owns dead-connection handling."""
    try:
        reply = client.update(ident, value=value,
                              deadline=config.deadline, tenant=tenant)
    except OSError:
        raise
    except Exception:  # noqa: BLE001 - counted
        return _Outcome(tenant, "update", "error",
                        scheduled=scheduled, update_id=ident,
                        update_value=value)
    latency = time.monotonic() - scheduled
    outcome = _classify(reply, tenant, "update", latency, scheduled)
    outcome.update_id = ident
    outcome.update_value = value
    if outcome.kind == "ok":
        outcome.seq = reply.get("seq")
    return outcome


def _connect(config: LoadConfig, tenant: str) -> ServingClient:
    client = ServingClient(config.host, config.port)
    reply = client.hello(engine=config.engine,
                         class_key=config.class_key,
                         units=config.units, shards=config.shards,
                         replicas=config.replicas or None,
                         consistency=(config.consistency
                                      if config.consistency != "strong"
                                      else None),
                         tenant=tenant)
    if not reply.get("ok"):
        client.close()
        raise BenchmarkError(
            f"handshake refused: {reply.get('error')}: "
            f"{reply.get('message')}")
    return client


# -- closed loop --------------------------------------------------------------

def run_closed_loop(config: LoadConfig) -> TrialResult:
    """N sessions, next query on completion, optional think time."""
    outcomes_per_stream: list[list[_Outcome]] = [
        [] for __ in range(config.streams)]
    start = time.monotonic()
    end = start + config.total_seconds

    def run_stream(index: int) -> None:
        mix = _RequestMix(config, config.seed + index)
        # A stream keeps one tenant for its whole session (sessions
        # belong to users); the mix's first draw picks it.
        tenant, __, ___ = mix.next()
        out = outcomes_per_stream[index]
        try:
            client = _connect(config, tenant)
        except (OSError, BenchmarkError):
            out.append(_Outcome(tenant, "-", "error",
                                scheduled=time.monotonic()))
            return
        ops = 0
        try:
            while True:
                now = time.monotonic()
                if now >= end:
                    break
                ops += 1
                if (config.update_every > 0
                        and ops % config.update_every == 0):
                    __, ident, value = mix.next_update()
                    try:
                        out.append(_issue_update(
                            client, config, tenant, ident, value, now))
                    except OSError:
                        out.append(_Outcome(tenant, "update", "error",
                                            scheduled=now,
                                            update_id=ident,
                                            update_value=value))
                        break
                    if config.think_seconds > 0.0:
                        time.sleep(config.think_seconds)
                    continue
                __, qid, params = mix.next()
                try:
                    reply = _traced_query(client, config, qid, params)
                except Exception as exc:  # noqa: BLE001 - counted
                    out.append(_Outcome(tenant, qid, "error",
                                        scheduled=now))
                    if isinstance(exc, OSError):
                        break  # dead connection ends the stream
                    continue
                latency = time.monotonic() - now
                out.append(_classify(reply, tenant, qid, latency, now))
                if config.think_seconds > 0.0:
                    time.sleep(config.think_seconds)
        finally:
            client.close()

    workers = [threading.Thread(target=run_stream, args=(index,))
               for index in range(config.streams)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.monotonic() - start
    outcomes = [outcome for per_stream in outcomes_per_stream
                for outcome in per_stream]
    return _aggregate(config, "closed", None, outcomes,
                      start + config.warmup_seconds, end, wall)


# -- open loop ----------------------------------------------------------------

def run_open_loop(config: LoadConfig,
                  rate: float | None = None) -> TrialResult:
    """Seeded Poisson arrivals at ``rate``/s, independent of
    completions; latency counts from the scheduled arrival."""
    rate = config.rate if rate is None else rate
    if rate <= 0:
        raise BenchmarkError(f"open-loop rate must be > 0, got {rate}")
    rng = random.Random(config.seed)
    offsets: list[float] = []
    clock = rng.expovariate(rate)
    while clock < config.total_seconds:
        offsets.append(clock)
        clock += rng.expovariate(rate)

    work: queue.SimpleQueue = queue.SimpleQueue()
    outcomes_per_worker: list[list[_Outcome]] = [
        [] for __ in range(config.streams)]

    def run_worker(index: int) -> None:
        out = outcomes_per_worker[index]
        try:
            client = _connect(config, "default")
        except (OSError, BenchmarkError):
            client = None
        try:
            while True:
                item = work.get()
                if item is None:
                    break
                scheduled, tenant, qid, params = item
                if client is None:
                    out.append(_Outcome(tenant, qid, "error",
                                        scheduled=scheduled))
                    continue
                if qid == "update":
                    try:
                        out.append(_issue_update(
                            client, config, tenant, params["id"],
                            params["value"], scheduled))
                    except OSError:
                        out.append(_Outcome(
                            tenant, "update", "error",
                            scheduled=scheduled,
                            update_id=params["id"],
                            update_value=params["value"]))
                    continue
                try:
                    reply = _traced_query(client, config, qid, params,
                                          tenant=tenant)
                except Exception:  # noqa: BLE001 - counted
                    out.append(_Outcome(tenant, qid, "error",
                                        scheduled=scheduled))
                    continue
                latency = time.monotonic() - scheduled
                out.append(_classify(reply, tenant, qid, latency,
                                     scheduled))
        finally:
            if client is not None:
                client.close()

    workers = [threading.Thread(target=run_worker, args=(index,))
               for index in range(config.streams)]
    for worker in workers:
        worker.start()

    mix = _RequestMix(config, config.seed)
    start = time.monotonic()
    for sent, offset in enumerate(offsets, start=1):
        scheduled = start + offset
        delay = scheduled - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if (config.update_every > 0
                and sent % config.update_every == 0):
            tenant, ident, value = mix.next_update()
            work.put((scheduled, tenant, "update",
                      {"id": ident, "value": value}))
            continue
        tenant, qid, params = mix.next()
        work.put((scheduled, tenant, qid, params))
    for __ in workers:
        work.put(None)
    for worker in workers:
        worker.join()
    wall = time.monotonic() - start
    outcomes = [outcome for per_worker in outcomes_per_worker
                for outcome in per_worker]
    return _aggregate(config, "open", rate, outcomes,
                      start + config.warmup_seconds,
                      start + config.total_seconds, wall)


# -- entry points -------------------------------------------------------------

def run_trial(config: LoadConfig) -> TrialResult:
    """One trial in the configured mode."""
    if config.mode == "open":
        return run_open_loop(config)
    if config.mode == "closed":
        return run_closed_loop(config)
    raise BenchmarkError(f"unknown load mode {config.mode!r}")


def run_rate_sweep(config: LoadConfig,
                   rates: list[float]) -> list[TrialResult]:
    """Open-loop trials across ``rates`` (the throughput/latency
    curve); each trial reuses the seed so only the rate varies."""
    results = []
    for rate in rates:
        results.append(run_open_loop(config, rate=rate))
    return results


def sweep_curve(results: list[TrialResult]) -> list[dict]:
    """The throughput-vs-tail-latency curve, one point per rate."""
    curve = []
    for result in results:
        summary = result.latencies.summary()
        curve.append({
            "target_rate": result.target_rate,
            "achieved_rate": round(result.achieved_rate, 3),
            "throughput_qps": round(result.throughput_qps, 3),
            "p50_ms": summary["p50_ms"],
            "p95_ms": summary["p95_ms"],
            "p99_ms": summary["p99_ms"],
            "rejected": result.rejected,
            "timeouts": result.timeouts,
            "errors": result.errors,
            "success_pct": round(result.success_pct, 3),
        })
    return curve
