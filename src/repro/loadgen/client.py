"""Blocking socket client for the query server.

One :class:`ServingClient` is one connection (one session after
:meth:`ServingClient.hello`).  The dict-based calls (:meth:`hello`,
:meth:`query`, :meth:`update`) return the raw protocol dicts —
``{"ok": True, ...}`` or ``{"ok": False, "error": "<TypeName>", ...}``
— because the load drivers *count* typed failures (rejections,
timeouts) rather than raising on them.

The typed surface sits on top: :meth:`ServingClient.request` sends a
:class:`repro.api.QueryRequest` and returns a
:class:`repro.api.QueryResponse`, and :meth:`ServingClient.session`
opens a context-managed :class:`Session` that threads tenant,
consistency tier and the read-your-writes sequence floor through every
call so callers never hand-assemble wire dicts.
"""

from __future__ import annotations

import socket

from ..api import (
    Consistency,
    QueryRequest,
    QueryResponse,
    SessionOptions,
)
from ..errors import ServerError
from ..server.protocol import recv_message, send_message


class ServingClient:
    """One connection to a :class:`~repro.server.server.QueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- protocol calls ------------------------------------------------------

    def call(self, message: dict) -> dict:
        """One request/response round trip."""
        send_message(self._sock, message)
        reply = recv_message(self._sock)
        if reply is None:
            raise ServerError("server closed the connection")
        return reply

    def hello(self, engine: str | None = None,
              class_key: str | None = None, units: int | None = None,
              shards: int | None = None,
              replicas: int | None = None,
              consistency=None,
              tenant: str = "default") -> dict:
        """Open the session; omitted fields take the server defaults.

        ``consistency`` (a tier string, wire dict or
        :class:`~repro.api.Consistency`) becomes the session default
        for reads; ``replicas`` provisions read replicas per shard.
        """
        message: dict = {"op": "hello", "tenant": tenant}
        if engine is not None:
            message["engine"] = engine
        if class_key is not None:
            message["class"] = class_key
        if units is not None:
            message["units"] = units
        if shards is not None:
            message["shards"] = shards
        if replicas is not None:
            message["replicas"] = replicas
        if consistency is not None:
            message["consistency"] = (
                Consistency.parse(consistency).to_wire())
        return self.call(message)

    def query(self, qid: str, params: dict | None = None,
              deadline: float | None = None,
              tenant: str | None = None,
              consistency=None,
              trace: dict | None = None) -> dict:
        """Run one query; ``trace`` is the optional wire-form trace
        context (:func:`repro.obs.trace.to_wire`) joining this request
        to a client-side distributed trace, ``consistency`` the
        optional per-request tier override."""
        message: dict = {"op": "query", "qid": qid}
        if params is not None:
            message["params"] = params
        if deadline is not None:
            message["deadline"] = deadline
        if tenant is not None:
            message["tenant"] = tenant
        if consistency is not None:
            message["consistency"] = (
                Consistency.parse(consistency).to_wire())
        if trace is not None:
            message["trace"] = trace
        return self.call(message)

    def update(self, id_value: str, value: str | None = None,
               deadline: float | None = None,
               tenant: str | None = None) -> dict:
        """Run one acknowledged write (the ``update`` verb); the reply
        carries ``seq``, the committed write sequence."""
        message: dict = {"op": "update", "id": str(id_value)}
        if value is not None:
            message["value"] = value
        if deadline is not None:
            message["deadline"] = deadline
        if tenant is not None:
            message["tenant"] = tenant
        return self.call(message)

    # -- typed surface -------------------------------------------------------

    def request(self, request: QueryRequest) -> QueryResponse:
        """Send one typed :class:`~repro.api.QueryRequest`."""
        return QueryResponse.from_wire(self.call(request.to_wire()))

    def session(self, options: SessionOptions | None = None,
                **fields) -> "Session":
        """Open a typed session: sends the ``hello`` now, returns a
        context-managed :class:`Session`.  Either pass a prebuilt
        :class:`~repro.api.SessionOptions` or its fields as kwargs."""
        if options is None:
            options = SessionOptions(**fields)
        elif fields:
            raise ServerError(
                "pass SessionOptions or field kwargs, not both")
        reply = self.call(options.to_wire())
        if not reply.get("ok"):
            raise ServerError(
                f"hello failed: {reply.get('error')}: "
                f"{reply.get('message')}")
        return Session(self, options, reply)

    def stats(self) -> dict:
        """The server's live telemetry snapshot (``stats`` verb)."""
        reply = self.call({"op": "stats"})
        return reply.get("stats", reply)

    def ping(self) -> dict:
        return self.call({"op": "ping"})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Polite close: best-effort ``bye``, then shut the socket."""
        try:
            send_message(self._sock, {"op": "bye"})
            recv_message(self._sock)
        except (OSError, ServerError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class Session:
    """One established server session with its consistency state.

    Wraps a :class:`ServingClient` after the handshake:

    * every read carries the session's tenant and consistency tier
      (overridable per call);
    * :attr:`last_write_seq` tracks the highest acknowledged write
      sequence, and a ``read_your_writes`` read that did not pin a
      ``min_seq`` automatically asks for at least that — the client
      side of the read-your-writes contract (the server keeps the
      same floor for dict-speaking clients).

    Closing the session closes the underlying client connection.
    """

    def __init__(self, client: ServingClient, options: SessionOptions,
                 hello_reply: dict) -> None:
        self.client = client
        self.options = options
        self.hello_reply = hello_reply
        #: highest ``seq`` any acknowledged write of this session saw.
        self.last_write_seq = 0

    def _effective(self, consistency) -> Consistency:
        resolved = (Consistency.parse(consistency)
                    if consistency is not None
                    else self.options.consistency)
        if (resolved.tier == "read_your_writes"
                and not resolved.min_seq):
            resolved = resolved.with_min_seq(self.last_write_seq)
        return resolved

    def query(self, qid: str, params: dict | None = None,
              deadline: float | None = None,
              consistency=None) -> QueryResponse:
        """One typed read under the session's (or given) tier."""
        request = QueryRequest(
            qid=qid, params=dict(params or {}),
            deadline=(deadline if deadline is not None
                      else self.options.deadline),
            tenant=self.options.tenant,
            consistency=self._effective(consistency),
            trace=self.options.trace)
        return self.client.request(request)

    def update(self, id_value: str,
               value: str | None = None) -> QueryResponse:
        """One typed acknowledged write; advances
        :attr:`last_write_seq` on success."""
        reply = self.client.update(id_value, value=value,
                                   deadline=self.options.deadline,
                                   tenant=self.options.tenant)
        response = QueryResponse.from_wire(reply)
        if response.ok and response.seq:
            self.last_write_seq = max(self.last_write_seq,
                                      response.seq)
        return response

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
