"""Blocking socket client for the query server.

One :class:`ServingClient` is one connection (one session after
:meth:`ServingClient.hello`).  Responses are returned as the raw
protocol dicts — ``{"ok": True, ...}`` or ``{"ok": False, "error":
"<TypeName>", ...}`` — because the load drivers *count* typed failures
(rejections, timeouts) rather than raising on them; callers that want
exceptions can check ``response["ok"]`` themselves.
"""

from __future__ import annotations

import socket

from ..errors import ServerError
from ..server.protocol import recv_message, send_message


class ServingClient:
    """One connection to a :class:`~repro.server.server.QueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- protocol calls ------------------------------------------------------

    def call(self, message: dict) -> dict:
        """One request/response round trip."""
        send_message(self._sock, message)
        reply = recv_message(self._sock)
        if reply is None:
            raise ServerError("server closed the connection")
        return reply

    def hello(self, engine: str | None = None,
              class_key: str | None = None, units: int | None = None,
              shards: int | None = None,
              tenant: str = "default") -> dict:
        """Open the session; omitted fields take the server defaults."""
        message: dict = {"op": "hello", "tenant": tenant}
        if engine is not None:
            message["engine"] = engine
        if class_key is not None:
            message["class"] = class_key
        if units is not None:
            message["units"] = units
        if shards is not None:
            message["shards"] = shards
        return self.call(message)

    def query(self, qid: str, params: dict | None = None,
              deadline: float | None = None,
              tenant: str | None = None,
              trace: dict | None = None) -> dict:
        """Run one query; ``trace`` is the optional wire-form trace
        context (:func:`repro.obs.trace.to_wire`) joining this request
        to a client-side distributed trace."""
        message: dict = {"op": "query", "qid": qid}
        if params is not None:
            message["params"] = params
        if deadline is not None:
            message["deadline"] = deadline
        if tenant is not None:
            message["tenant"] = tenant
        if trace is not None:
            message["trace"] = trace
        return self.call(message)

    def stats(self) -> dict:
        """The server's live telemetry snapshot (``stats`` verb)."""
        reply = self.call({"op": "stats"})
        return reply.get("stats", reply)

    def ping(self) -> dict:
        return self.call({"op": "ping"})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Polite close: best-effort ``bye``, then shut the socket."""
        try:
            send_message(self._sock, {"op": "bye"})
            recv_message(self._sock)
        except (OSError, ServerError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
