"""repro.loadgen — the client-side load harness.

The workload-driver half of the serving story (Benchbase/YCSB shape):

* :mod:`~repro.loadgen.client` — a blocking socket client speaking the
  server's length-prefixed JSON protocol;
* :mod:`~repro.loadgen.driver` — open-loop (seeded Poisson arrivals at
  a configured rate) and closed-loop (N sessions, optional think time)
  drivers over the workload query mix, with warm-up vs measurement
  windows, per-tenant breakdowns and a rate-sweep mode that traces the
  throughput-vs-tail-latency curve into ``BENCH_serving.json``.
"""

from .client import ServingClient
from .driver import (
    LoadConfig,
    TrialResult,
    run_closed_loop,
    run_open_loop,
    run_rate_sweep,
    run_trial,
    sweep_curve,
)

__all__ = [
    "ServingClient",
    "LoadConfig",
    "TrialResult",
    "run_closed_loop",
    "run_open_loop",
    "run_rate_sweep",
    "run_trial",
    "sweep_curve",
]
