"""Exception hierarchy shared by every XBench subsystem.

All library errors derive from :class:`ReproError` so applications can catch
one base class.  Engine-specific "this configuration cannot run" conditions
(the ``-`` cells in the paper's tables) raise
:class:`UnsupportedConfiguration`, which the benchmark report layer renders
as ``-`` exactly like the paper does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the XBench reproduction."""


class XMLError(ReproError):
    """Base class for XML document-model and parsing errors."""


class XMLParseError(XMLError):
    """Raised when a document is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XQueryError(ReproError):
    """Base class for all XQuery engine errors."""


class XQuerySyntaxError(XQueryError):
    """Raised by the XQuery lexer/parser on malformed query text."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class XQueryTypeError(XQueryError):
    """Raised when a value has the wrong type for an operation (err:XPTY)."""


class XQueryEvalError(XQueryError):
    """Raised for dynamic evaluation errors (unknown function, bad cast...)."""


class GenerationError(ReproError):
    """Raised when a ToXgene template cannot be instantiated."""


class RelStoreError(ReproError):
    """Base class for the mini relational engine."""


class SchemaError(RelStoreError):
    """Raised on invalid table/index definitions or constraint violations."""


class EngineError(ReproError):
    """Base class for DBMS engine analogue errors."""


class UnsupportedConfiguration(EngineError):
    """The engine cannot run this (class, scale) combination.

    Mirrors the ``-`` cells of the paper's tables, e.g. DB2 Xcolumn on
    single-document classes, or DB2 Xcollection beyond the small scale on
    single-document classes (1024-row decomposition limit).
    """


class LoadError(EngineError):
    """Raised when bulk loading a document collection fails."""


class UnsupportedOperation(EngineError):
    """The engine does not support this update operation on this class.

    The first XBench version is query-only; the update workload is this
    reproduction's implementation of the paper's planned extension #2
    ("update workloads"), and applies to the multi-document classes.
    """


class UnsupportedQuery(EngineError):
    """The engine has no translation for this workload query.

    The paper hand-translates only the experiment subset (Q5, Q8, Q12,
    Q14, Q17) to SQL; the relational analogues mirror that scope.
    """


class ShardError(EngineError):
    """Raised by the sharded execution service for infrastructure
    failures: a worker process died and could not be respawned, an RPC
    call timed out, or retries were exhausted.  Application-level errors
    raised *inside* a worker (e.g. :class:`UnsupportedQuery`) are
    re-raised under their own type, not this one.
    """


class CircuitOpen(ShardError):
    """A shard's circuit breaker is open: the shard failed ``K``
    consecutive RPCs at the infrastructure level, so further calls fail
    fast instead of waiting out another timeout.  After the breaker's
    cooldown one probe call is let through (half-open); a success closes
    the circuit again.  Surfaced in benchmark reports exactly like
    :class:`ShardError` incidents.
    """


class WalCorruption(EngineError):
    """A write-ahead-log record failed its CRC32 check.

    Recovery treats corruption as data loss, not as a crash: a torn
    final frame is truncated (the write it held was never acknowledged
    under ``fsync="always"``), and a corrupt record in the middle of a
    segment is *skipped* — replay continues with the next frame and the
    incident is recorded on the recovering engine.  Carries the segment
    path and the byte ``offset`` of the bad frame so the incident is
    actionable.
    """

    def __init__(self, message: str, path: str | None = None,
                 offset: int | None = None):
        self.path = path
        self.offset = offset
        if path is not None:
            where = path if offset is None else f"{path}@{offset}"
            message = f"{message} ({where})"
        super().__init__(message)


class RecoveryError(EngineError):
    """Cold-start recovery from a data directory cannot proceed.

    Raised when the directory has no usable checkpoint manifest, when
    every recorded checkpoint's snapshot files are missing or corrupt,
    or when the manifest disagrees with the recovering engine's
    configuration (shard count, database class).  Distinct from
    :class:`WalCorruption`: a bad WAL *record* is skipped and recovery
    continues; this type means there is nothing to recover onto.
    """


class QueryTimeout(ReproError):
    """A query exceeded its :class:`~repro.faults.deadline.Deadline`.

    Raised cooperatively: the XQuery evaluator and the edge path
    compiler check the thread-local deadline every N evaluation steps,
    so a runaway (or fault-delayed) query aborts with this typed error
    instead of hanging the harness.  Crossing the sharded RPC boundary,
    the remaining budget travels with the call and the worker-side
    evaluator raises this same type; it is an application-level error —
    never retried, never respawned.  When the failed query was traced,
    ``trace_id`` joins the error against the span logs.
    """

    def __init__(self, message: str, budget_seconds: float | None = None,
                 trace_id: str | None = None):
        self.budget_seconds = budget_seconds
        self.trace_id = trace_id
        if budget_seconds is not None:
            message = f"{message} (deadline {budget_seconds:.3f}s)"
        super().__init__(message)


class PartialResult(EngineError):
    """A sharded query was answered from the healthy shards only.

    In ``degraded="partial"`` mode the merge planner drops shards whose
    RPCs exhausted retries (or whose breaker is open) and annotates the
    query with an incident record instead of failing it outright.  This
    type names that outcome: it carries the merged ``values`` from the
    healthy shards and the ``failed_shards`` indices, and its name is
    what the benchmark report's incident column shows.  When the query
    was traced, ``trace_id`` joins the incident against the span logs.
    """

    def __init__(self, message: str, values: list | None = None,
                 failed_shards: tuple = (), trace_id: str | None = None):
        self.values = list(values or [])
        self.failed_shards = tuple(failed_shards)
        self.trace_id = trace_id
        super().__init__(message)


class ServerError(ReproError):
    """Base class for the persistent query server's typed failures.

    The server never lets an exception escape a connection handler:
    every failure crosses the wire as a typed error response, and the
    client library re-raises (or counts) it under one of these types.
    """


class ServerOverloaded(ServerError):
    """The server shed this request at admission time.

    Raised (and sent as a typed response) when the bounded request
    queue is full, or when the request carries a deadline that the
    predicted in-queue wait would already exhaust — shedding early is
    cheaper than queueing work that is doomed to time out.
    """


class ServerDraining(ServerError):
    """The server is shutting down gracefully (SIGTERM drain).

    In-flight and already-admitted queries complete; new sessions and
    new queries are refused with this type.
    """


class ConsistencyError(ReproError):
    """An invalid consistency tier or tier argument was requested.

    Raised when parsing a consistency specification (an unknown tier
    name, a negative ``max_lag``, a malformed ``tier:arg`` string) and
    when a request asks for a guarantee the engine cannot express —
    e.g. ``read_your_writes`` with a session sequence from a different
    corpus generation.
    """


class FaultInjected(ReproError):
    """An error deliberately injected by an active
    :class:`~repro.faults.plan.FaultPlan` rule of kind ``"error"``.

    Distinct from every organic error type so tests and the chaos
    scorecard can tell injected failures from real bugs.
    """


class BenchmarkError(ReproError):
    """Raised by the benchmark driver for invalid experiment requests."""
