"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures``   print the paper's Figures 1-4 (schema diagrams)
``suite``     run the full benchmark and print Tables 4-9
``generate``  write a database class's corpus to disk
``query``     run one workload query on one engine and print results
``path``      run an arbitrary path query via structural joins
``schema``    print a class's schema as diagram, DTD or XSD
``stats``     analyze a generated corpus (Table 2-style + fits)
``verify``    cross-check every engine against the native oracle
``workload``  list the 20 query types and their class applicability
``updates``   run the update-workload extension on one engine
``multiuser`` multi-user throughput harness
``profile``   observed benchmark run: spans, counters, latency
              percentiles and a ``BENCH_<name>.json`` artifact
``explain``   EXPLAIN ANALYZE one query: annotated operator plan
              trees (rows, calls, wall-time) per engine
``obs``       artifact tooling; ``obs diff A B`` compares two BENCH
              artifacts and gates on cold-time regressions
``chaos``     run a workload under a named fault-injection scenario
              and score availability (``BENCH_chaos.json``)
``serve``     persistent query server: warm engines across requests,
              admission control, weighted-fair tenants, graceful
              drain on SIGTERM
``load``      open/closed-loop load harness against a running server;
              ``--rate-sweep`` traces throughput-vs-P99 into
              ``BENCH_serving.json``
``trace``     reassemble NDJSON span logs (server + client) into
              cross-process trace trees: completeness, per-request
              critical paths, and the aggregate time-attribution
              table (queue vs pipe vs execute vs merge)
"""

from __future__ import annotations

import argparse
import sys

from .core.benchmark import BenchmarkConfig, CorpusCache, XBench
from .core.diagrams import render_all_figures
from .core.indexes import indexes_for
from .core.report import format_suite
from .databases import CLASSES_BY_KEY
from .engines import create
from .errors import ReproError
from .workload import ALL_QUERIES, bind_params
from .workload.queries import QUERIES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XBench: a family of XML DBMS benchmarks "
                    "(ICDE 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="print Figures 1-4")

    suite = sub.add_parser("suite", help="run Tables 4-9")
    suite.add_argument("--divisor", type=int, default=1000,
                       help="scale divisor over the paper's byte "
                            "budgets (default 1000)")
    suite.add_argument("--scales", default="small,normal,large")
    suite.add_argument("--classes", default="dcsd,dcmd,tcsd,tcmd")
    suite.add_argument("--no-indexes", action="store_true",
                       help="skip the Table 3 value indexes "
                            "(sequential-scan baseline)")
    suite.add_argument("--format", default="tables",
                       choices=["tables", "csv", "json"])
    suite.add_argument("--repeats", type=int, default=1,
                       help="executions per query cell (first run is "
                            "the cold time; extras feed warm stats)")
    suite.add_argument("--obs-out", default=None, metavar="DIR",
                       help="observe the run and write "
                            "BENCH_suite.json under DIR")
    suite.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run every engine behind the sharded "
                            "execution service with N worker "
                            "processes (0 = single-process)")
    suite.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="warm-start corpora from `repro snapshot "
                            "build` artifacts under DIR (missing or "
                            "stale snapshots fall back to generation)")
    suite.add_argument("--rpc-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-RPC timeout for the sharded service "
                            "(default: the service default)")

    generate = sub.add_parser("generate", help="write a corpus to disk")
    generate.add_argument("class_key", choices=sorted(CLASSES_BY_KEY))
    generate.add_argument("--units", type=int, default=100)
    generate.add_argument("--out", default="xbench_corpus")
    generate.add_argument("--seed", type=int, default=42)

    query = sub.add_parser("query", help="run one workload query")
    query.add_argument("qid", help="query id, e.g. Q5")
    query.add_argument("class_key", choices=sorted(CLASSES_BY_KEY))
    query.add_argument("--engine", default="native",
                       choices=["native", "xcolumn", "xcollection",
                                "sqlserver"])
    query.add_argument("--units", type=int, default=50)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--limit", type=int, default=10,
                       help="max result items to print")

    stats = sub.add_parser("stats", help="analyze a generated corpus")
    stats.add_argument("class_key", choices=sorted(CLASSES_BY_KEY))
    stats.add_argument("--units", type=int, default=100)
    stats.add_argument("--seed", type=int, default=42)

    workload = sub.add_parser("workload",
                              help="list the 20 query types")
    workload.add_argument("--full", action="store_true",
                          help="include descriptions and per-class "
                               "XQuery text")

    schema = sub.add_parser(
        "schema", help="print a class's schema (diagram, DTD or XSD)")
    schema.add_argument("class_key", choices=sorted(CLASSES_BY_KEY))
    schema.add_argument("--format", default="diagram",
                        choices=["diagram", "dtd", "xsd"])

    verify = sub.add_parser(
        "verify", help="cross-check every engine against the native "
                       "oracle")
    verify.add_argument("class_key", nargs="?", default=None,
                        choices=sorted(CLASSES_BY_KEY))
    verify.add_argument("--divisor", type=int, default=2000)
    verify.add_argument("--scale", default="small")
    verify.add_argument("--replicas", type=int, default=0,
                        metavar="N",
                        help="read replicas per shard on the sharded "
                             "row; its reads then run under eventual "
                             "consistency, verifying journal-shipped "
                             "replica state against the oracle")
    verify.add_argument("--shards", type=int, default=0, metavar="N",
                        help="also verify the native engine behind "
                             "the sharded execution service with N "
                             "workers; sharded mismatches exit "
                             "non-zero")
    verify.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="warm-start corpora from snapshots "
                             "under DIR")
    verify.add_argument("--rpc-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-RPC timeout for the sharded row")

    updates = sub.add_parser("updates",
                             help="run the update-workload extension")
    updates.add_argument("class_key", choices=["dcmd", "tcmd"])
    updates.add_argument("--engine", default="native",
                         choices=["native", "xcolumn", "xcollection",
                                  "sqlserver"])
    updates.add_argument("--units", type=int, default=60)
    updates.add_argument("--count", type=int, default=30)
    updates.add_argument("--shards", type=int, default=0, metavar="N",
                         help="route the update stream through the "
                              "sharded execution service")

    path = sub.add_parser(
        "path", help="run an arbitrary path query via structural "
                     "joins (edge store)")
    path.add_argument("class_key", choices=sorted(CLASSES_BY_KEY))
    path.add_argument("expression",
                      help="pure path query, e.g. "
                           "\"/dictionary/entry[hw = 'word_1']/pos\"")
    path.add_argument("--units", type=int, default=50)
    path.add_argument("--limit", type=int, default=10)

    multiuser = sub.add_parser(
        "multiuser", help="multi-user throughput (extension)")
    multiuser.add_argument("class_key",
                           choices=sorted(CLASSES_BY_KEY))
    multiuser.add_argument("--engine", default="native",
                           choices=["native", "xcolumn", "xcollection",
                                    "sqlserver"])
    multiuser.add_argument("--streams", type=int, default=4)
    multiuser.add_argument("--queries", type=int, default=20)
    multiuser.add_argument("--units", type=int, default=60)
    multiuser.add_argument("--mode", default="threads",
                           choices=["threads", "interleaved"])
    multiuser.add_argument("--obs-out", default=None, metavar="DIR",
                           help="observe the run and write "
                                "BENCH_multiuser.json under DIR")
    multiuser.add_argument("--shards", type=int, default=0,
                           metavar="N",
                           help="run the streams against the sharded "
                                "execution service with N worker "
                                "processes (real parallelism instead "
                                "of GIL interleaving)")
    multiuser.add_argument("--rpc-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="per-RPC timeout for the sharded "
                                "service")
    multiuser.add_argument("--replicas", type=int, default=0,
                           metavar="N",
                           help="read replicas per shard (requires "
                                "--shards >= 2); the report then "
                                "includes a per-tier staleness table")
    multiuser.add_argument("--consistency", default="strong",
                           choices=["strong", "read_your_writes",
                                    "bounded_staleness", "eventual"],
                           help="default read-consistency tier for "
                                "replicated reads")
    multiuser.add_argument("--deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="per-query deadline; over-budget "
                                "queries are cancelled cooperatively "
                                "and counted as QueryTimeout "
                                "incidents")
    multiuser.add_argument("--seed", type=int, default=17,
                           help="stream-plan seed (same seed = same "
                                "per-stream query/params schedule)")

    profile = sub.add_parser(
        "profile", help="observed benchmark run (obs subsystem): "
                        "phase spans, counters, latency percentiles "
                        "and a BENCH_<name>.json artifact")
    profile.add_argument("--divisor", type=int, default=2000)
    profile.add_argument("--scales", default="small")
    profile.add_argument("--classes", default="dcsd,tcsd")
    profile.add_argument("--engines", default=None,
                         help="comma list of engine keys "
                              "(native,xcolumn,xcollection,sqlserver; "
                              "default: all)")
    profile.add_argument("--queries", default=None,
                         help="comma list of query ids "
                              "(default: the experiment five)")
    profile.add_argument("--repeats", type=int, default=3,
                         help="executions per query cell (cold + "
                              "warm; feeds the latency histograms)")
    profile.add_argument("--no-indexes", action="store_true",
                         help="skip Table 3 index creation (for "
                              "indexed-vs-unindexed A/B runs)")
    profile.add_argument("--name", default="profile",
                         help="artifact name (BENCH_<name>.json)")
    profile.add_argument("--obs-out", default=".", metavar="DIR",
                         help="directory for the BENCH artifact")
    profile.add_argument("--spans", default=None, metavar="PATH",
                         help="also write the NDJSON span log here")
    profile.add_argument("--explain", action="store_true",
                         help="attach the plan profiler: per-cell "
                              "operator plan trees land in the "
                              "artifact (schema xbench-obs/2)")
    profile.add_argument("--format", default="text",
                         choices=["text", "json"],
                         help="text report (default) or the artifact "
                              "JSON on stdout")
    profile.add_argument("--shards", type=int, default=0, metavar="N",
                         help="run every engine behind the sharded "
                              "execution service with N worker "
                              "processes")
    profile.add_argument("--snapshot-dir", default=None, metavar="DIR",
                         help="warm-start corpora from snapshots "
                              "under DIR")
    profile.add_argument("--rpc-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-RPC timeout for the sharded "
                              "service (default: the service default)")
    profile.add_argument("--sample-resources", action="store_true",
                         help="sample CPU/RSS of this process during "
                              "the run (pilot-calibrated interval) "
                              "and embed the summary in the artifact")

    explain = sub.add_parser(
        "explain", help="EXPLAIN ANALYZE one workload query: run it "
                        "and print the annotated operator plan tree")
    explain.add_argument("class_key",
                         help="database class (dcsd/dcmd/tcsd/tcmd; "
                              "dc_sd-style spellings accepted)")
    explain.add_argument("qid", help="query id, e.g. Q5")
    explain.add_argument("--engine", action="append", default=None,
                         metavar="KEY",
                         help="engine key (repeatable; "
                              "native,xcolumn,xcollection,sqlserver,"
                              "edge; default: native)")
    explain.add_argument("--units", type=int, default=50)
    explain.add_argument("--seed", type=int, default=42)
    explain.add_argument("--format", default="text",
                         choices=["text", "json"])

    obs = sub.add_parser(
        "obs", help="BENCH artifact tooling (cross-run regression "
                    "diffing)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two BENCH_*.json artifacts; non-zero "
                     "exit past the regression threshold")
    obs_diff.add_argument("artifact_a", help="baseline artifact")
    obs_diff.add_argument("artifact_b", help="candidate artifact")
    obs_diff.add_argument("--threshold", type=float, default=None,
                          metavar="FRACTION",
                          help="cold-time regression threshold "
                               "(default 0.25 = +25%%)")
    obs_diff.add_argument("--min-ms", type=float, default=None,
                          metavar="MS",
                          help="noise floor: cells faster than this in "
                               "both runs never gate (default 1 ms)")
    obs_diff.add_argument("--normalize-shards", action="store_true",
                          help="fold '<system> xN' sharded rows onto "
                               "'<system>' so a shards-on run pairs "
                               "with a shards-off baseline")
    obs_diff.add_argument("--format", default="text",
                          choices=["text", "json"])
    obs_diff.add_argument("--verbose", action="store_true",
                          help="list unchanged cells too")

    from .faults.scenarios import SCENARIOS
    chaos = sub.add_parser(
        "chaos", help="run a workload under a named fault-injection "
                      "scenario and score availability")
    chaos.add_argument("--scenario", required=True,
                       choices=sorted(SCENARIOS),
                       help="named fault scenario")
    chaos.add_argument("--class", dest="class_key", default="dcmd",
                       choices=sorted(CLASSES_BY_KEY))
    chaos.add_argument("--engine", default="native",
                       choices=["native", "xcolumn", "xcollection",
                                "sqlserver"])
    chaos.add_argument("--units", type=int, default=24)
    chaos.add_argument("--shards", type=int, default=3)
    chaos.add_argument("--queries", type=int, default=40)
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan + query-mix seed (same seed = "
                            "same fault sequence and scorecard)")
    chaos.add_argument("--retries", type=int, default=2)
    chaos.add_argument("--degraded", default="partial",
                       choices=["fail", "partial"],
                       help="shard-failure policy during the run")
    chaos.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-query deadline (overrides the "
                            "scenario's recommendation)")
    chaos.add_argument("--rpc-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-RPC timeout (overrides the "
                            "scenario's recommendation)")
    chaos.add_argument("--replicas", type=int, default=None,
                       metavar="N",
                       help="read replicas per shard (default: the "
                            "scenario's recommendation)")
    chaos.add_argument("--consistency", default=None,
                       metavar="TIER",
                       help="read tier: strong, eventual, "
                            "read_your_writes, bounded_staleness:K "
                            "(default: the scenario's recommendation)")
    chaos.add_argument("--write-every", type=int, default=None,
                       metavar="N",
                       help="interleave one acknowledged write every "
                            "N operations (default: the scenario's "
                            "recommendation; 0 disables)")
    chaos.add_argument("--data-dir", default=None, metavar="DIR",
                       help="durable-mode data directory (WAL + "
                            "checkpoints); default for durable "
                            "scenarios is a private temp dir")
    chaos.add_argument("--restarts", type=int, default=None,
                       metavar="N",
                       help="kill -9 + cold-start recovery cycles "
                            "spread through the stream (default: the "
                            "scenario's recommendation)")
    chaos.add_argument("--max-lost-writes", type=int, default=None,
                       metavar="N",
                       help="fail (exit 1) when more than N "
                            "acknowledged writes are lost (the "
                            "replication CI gate uses 0)")
    chaos.add_argument("--min-availability", type=float, default=None,
                       metavar="PCT",
                       help="exit non-zero when availability falls "
                            "below PCT (unhandled exceptions always "
                            "fail the run)")
    chaos.add_argument("--name", default="chaos",
                       help="artifact name (BENCH_<name>.json)")
    chaos.add_argument("--obs-out", default=None, metavar="DIR",
                       help="write the BENCH_<name>.json scorecard "
                            "under DIR")
    chaos.add_argument("--format", default="text",
                       choices=["text", "json"])

    serve = sub.add_parser(
        "serve", help="persistent query server: warm engines, "
                      "admission control, weighted-fair tenants, "
                      "graceful drain on SIGTERM")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7497,
                       help="listen port (0 = ephemeral; the bound "
                            "port is announced on stdout)")
    serve.add_argument("--engine", default="native",
                       choices=["native", "xcolumn", "xcollection",
                                "sqlserver"],
                       help="default session engine (hello may "
                            "override)")
    serve.add_argument("--class", dest="class_key", default="dcmd",
                       choices=sorted(CLASSES_BY_KEY))
    serve.add_argument("--units", type=int, default=24)
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve the default spec behind the "
                            "sharded execution service")
    serve.add_argument("--replicas", type=int, default=0, metavar="N",
                       help="read replicas per shard of the default "
                            "spec (requires --shards >= 2); replica "
                            "sessions honor per-request consistency "
                            "tiers")
    serve.add_argument("--queue", type=int, default=64,
                       metavar="DEPTH",
                       help="bounded request queue; beyond this, "
                            "requests are shed with ServerOverloaded")
    serve.add_argument("--executors", type=int, default=1,
                       metavar="N", help="concurrent query slots")
    serve.add_argument("--tenant-weight", action="append",
                       default=None, metavar="NAME=W",
                       help="fair-scheduling weight (repeatable; "
                            "unlisted tenants get 1.0)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="deadline applied to requests that do "
                            "not carry one")
    serve.add_argument("--rpc-timeout", type=float, default=None,
                       metavar="SECONDS")
    serve.add_argument("--degraded", default="partial",
                       choices=["fail", "partial"])
    serve.add_argument("--throttle", type=float, default=0.0,
                       metavar="SECONDS",
                       help="artificial per-query service-time floor "
                            "(gives tiny corpora a realistic "
                            "saturation knee in load tests)")
    serve.add_argument("--no-preload", action="store_true",
                       help="skip loading the default engine before "
                            "accepting connections")
    serve.add_argument("--trace-spans", default=None, metavar="PATH",
                       help="record distributed-trace spans and write "
                            "them as NDJSON here on drain (feed the "
                            "log to `repro trace`)")
    serve.add_argument("--no-resource-sampling", action="store_true",
                       help="disable the CPU/RSS sampler over the "
                            "server and its shard workers")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="cold engine loads mmap pre-encoded "
                            "corpora from snapshots under DIR "
                            "instead of generating + parsing")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="durable mode: sharded specs journal "
                            "every write under DIR and a restart "
                            "against the same DIR recovers to the "
                            "exact committed sequence (kill -9 safe "
                            "with --fsync always)")
    serve.add_argument("--fsync", default="batch",
                       choices=["always", "batch", "off"],
                       help="WAL fsync policy for --data-dir specs: "
                            "always = fsync before every ack, batch "
                            "= fsync at checkpoints/rotation, off = "
                            "leave it to the OS")
    serve.add_argument("--checkpoint-interval", type=float,
                       default=0.0, metavar="SECONDS",
                       help="background checkpoint + WAL compaction "
                            "period for --data-dir specs (0 = only "
                            "the load-time checkpoint)")

    snapshot = sub.add_parser(
        "snapshot", help="build/inspect pre-encoded corpus snapshots "
                         "(mmap-loadable warm starts)")
    snap_sub = snapshot.add_subparsers(dest="snapshot_command",
                                       required=True)
    snap_build = snap_sub.add_parser(
        "build", help="generate a corpus and write its snapshot")
    snap_build.add_argument("class_key", nargs="?", default="all",
                            choices=sorted(CLASSES_BY_KEY) + ["all"],
                            help="one class, or 'all' (default)")
    snap_build.add_argument("--units", type=int, default=None,
                            help="explicit unit count (default: "
                                 "derive from --scale/--divisor, "
                                 "matching what suite/verify load)")
    snap_build.add_argument("--scale", default="small",
                            choices=["small", "normal", "large"])
    snap_build.add_argument("--divisor", type=int, default=1000,
                            help="paper-budget divisor used to derive "
                                 "units when --units is not given")
    snap_build.add_argument("--seed", type=int, default=42)
    snap_build.add_argument("--out", default="snapshots",
                            metavar="DIR")
    snap_inspect = snap_sub.add_parser(
        "inspect", help="print a snapshot's directory and totals")
    snap_inspect.add_argument("path", help="snapshot file (.rxs)")
    snap_inspect.add_argument("--limit", type=int, default=10,
                              metavar="N",
                              help="per-document rows to print "
                                   "(0 = all)")

    load = sub.add_parser(
        "load", help="open/closed-loop load harness against a "
                     "running `repro serve`")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=7497)
    load.add_argument("--engine", default="native",
                      choices=["native", "xcolumn", "xcollection",
                               "sqlserver"])
    load.add_argument("--class", dest="class_key", default="dcmd",
                      choices=sorted(CLASSES_BY_KEY))
    load.add_argument("--units", type=int, default=24,
                      help="must match the corpus served for the "
                           "session spec")
    load.add_argument("--shards", type=int, default=0)
    load.add_argument("--replicas", type=int, default=0, metavar="N",
                      help="read replicas per shard of the session "
                           "spec (requires --shards >= 2)")
    load.add_argument("--consistency", default="strong",
                      metavar="TIER",
                      help="session read tier: strong, eventual, "
                           "read_your_writes, bounded_staleness:K")
    load.add_argument("--mode", default="closed",
                      choices=["closed", "open"],
                      help="closed: N sessions, next query on "
                           "completion; open: seeded Poisson "
                           "arrivals at --rate")
    load.add_argument("--rate", type=float, default=20.0,
                      metavar="QPS", help="open-loop arrival rate")
    load.add_argument("--rate-sweep", default=None, metavar="R1,R2,..",
                      help="open-loop trials across these rates; "
                           "traces the throughput-vs-P99 curve")
    load.add_argument("--streams", type=int, default=4,
                      help="closed-loop sessions / open-loop "
                           "in-flight worker cap")
    load.add_argument("--think", type=float, default=0.0,
                      metavar="SECONDS",
                      help="closed-loop think time between queries")
    load.add_argument("--warmup", type=float, default=1.0,
                      metavar="SECONDS",
                      help="untimed traffic before the measurement "
                           "window")
    load.add_argument("--measure", type=float, default=5.0,
                      metavar="SECONDS", help="measurement window")
    load.add_argument("--seed", type=int, default=17,
                      help="arrival-schedule + query-mix seed")
    load.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="per-request deadline sent to the server")
    load.add_argument("--update-every", type=int, default=0,
                      metavar="N",
                      help="interleave one acknowledged write every N "
                           "requests (0 = reads only); acked writes "
                           "are reported run-wide for the "
                           "crash-recovery lost-write gate")
    load.add_argument("--tenant", action="append", default=None,
                      metavar="NAME=SHARE",
                      help="traffic mix tenant (repeatable; default "
                           "one tenant 'default')")
    load.add_argument("--queries", default=None,
                      help="comma list of query ids (default: the "
                           "experiment five)")
    load.add_argument("--name", default="serving",
                      help="artifact name (BENCH_<name>.json)")
    load.add_argument("--obs-out", default=None, metavar="DIR",
                      help="write the BENCH_<name>.json scorecard "
                           "under DIR")
    load.add_argument("--format", default="text",
                      choices=["text", "json"])
    load.add_argument("--trace-spans", default=None, metavar="PATH",
                      help="record client-side request spans and "
                           "write them as NDJSON here (pair with the "
                           "server's log in `repro trace` for the "
                           "client-vs-server decomposition)")

    trace = sub.add_parser(
        "trace", help="reassemble NDJSON span logs into cross-process "
                      "trace trees and print the time-attribution "
                      "table")
    trace.add_argument("logs", nargs="+", metavar="SPANS.ndjson",
                       help="span logs to merge (server and/or "
                            "client; order does not matter)")
    trace.add_argument("--format", default="text",
                       choices=["text", "json"])
    trace.add_argument("--limit", type=int, default=3, metavar="N",
                       help="trace trees to print in text mode "
                            "(slowest first; default 3)")
    trace.add_argument("--trace", dest="trace_id", default=None,
                       metavar="ID",
                       help="print only the tree(s) of this trace id")
    trace.add_argument("--min-completeness", type=float, default=None,
                       metavar="PCT",
                       help="exit non-zero when fewer than PCT%% of "
                            "traces reassemble into complete trees")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="also write the JSON report here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into head/less that closed early: normal exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figures":
        print(render_all_figures())
    elif args.command == "suite":
        return _cmd_suite(args)
    elif args.command == "generate":
        return _cmd_generate(args)
    elif args.command == "query":
        return _cmd_query(args)
    elif args.command == "stats":
        return _cmd_stats(args)
    elif args.command == "workload":
        return _cmd_workload(args)
    elif args.command == "updates":
        return _cmd_updates(args)
    elif args.command == "verify":
        return _cmd_verify(args)
    elif args.command == "schema":
        return _cmd_schema(args)
    elif args.command == "multiuser":
        return _cmd_multiuser(args)
    elif args.command == "path":
        return _cmd_path(args)
    elif args.command == "profile":
        return _cmd_profile(args)
    elif args.command == "explain":
        return _cmd_explain(args)
    elif args.command == "obs":
        return _cmd_obs(args)
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "snapshot":
        return _cmd_snapshot(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "load":
        return _cmd_load(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    return 0


def _cmd_path(args: argparse.Namespace) -> int:
    from .xml.serializer import serialize
    db_class = CLASSES_BY_KEY[args.class_key]
    documents = db_class.generate(args.units, seed=42)
    with create("edge") as engine:
        engine.timed_load(db_class,
                          [(d.name, serialize(d)) for d in documents])
        outcome = engine.adhoc(args.expression)
    values = outcome.values
    print(f"{len(values)} item(s) in {outcome.seconds * 1000:.2f} ms "
          f"(structural joins over the interval table)")
    for value in values[:args.limit]:
        preview = value if len(value) <= 100 else value[:97] + "..."
        print(f"  {preview}")
    if len(values) > args.limit:
        print(f"  ... {len(values) - args.limit} more")
    return 0


def _cmd_multiuser(args: argparse.Namespace) -> int:
    from .core.multiuser import run_multi_user
    from .obs import Recorder, bench_summary, observing, \
        write_bench_artifact
    with _load_engine(args.engine, args.class_key, args.units, 42,
                      shards=args.shards,
                      rpc_timeout=args.rpc_timeout,
                      replicas=args.replicas,
                      consistency=args.consistency) as engine:
        recorder = Recorder(name="multiuser") if args.obs_out else None
        if recorder is not None:
            with observing(recorder):
                result = run_multi_user(
                    engine, args.class_key, args.units,
                    streams=args.streams,
                    queries_per_stream=args.queries,
                    mode=args.mode, seed=args.seed,
                    deadline_seconds=args.deadline)
        else:
            result = run_multi_user(engine, args.class_key, args.units,
                                    streams=args.streams,
                                    queries_per_stream=args.queries,
                                    mode=args.mode, seed=args.seed,
                                    deadline_seconds=args.deadline)
        print(result.summary())
        if recorder is not None:
            summary = bench_summary(
                "multiuser", recorder=recorder,
                config={"engine": args.engine, "class": args.class_key,
                        "streams": args.streams,
                        "queries": args.queries,
                        "units": args.units, "mode": args.mode,
                        "seed": args.seed, "shards": args.shards,
                        "replicas": args.replicas,
                        "consistency": args.consistency},
                extra={"multiuser": result.record()})
            path = write_bench_artifact(summary, args.obs_out)
            print(f"wrote {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    from .obs import bench_summary, format_profile, write_bench_artifact, \
        write_ndjson
    config = BenchmarkConfig(
        scale_divisor=args.divisor,
        scale_names=tuple(args.scales.split(",")),
        class_keys=tuple(args.classes.split(",")),
        engine_keys=(tuple(args.engines.split(","))
                     if args.engines else None),
        repeats=args.repeats,
        with_indexes=not args.no_indexes,
        observe=True,
        explain=args.explain,
        shards=args.shards,
        rpc_timeout=args.rpc_timeout,
        snapshot_dir=args.snapshot_dir)
    if args.queries:
        config.query_ids = tuple(qid.upper()
                                 for qid in args.queries.split(","))
    bench = XBench(config)
    sampler = None
    if args.sample_resources:
        import os
        from .obs import ResourceSampler
        sampler = ResourceSampler([os.getpid()])
        sampler.start()
    try:
        suite = bench.run_suite()
    finally:
        if sampler is not None:
            sampler.stop()
    recorder = bench.recorder
    summary = bench_summary(args.name, suite=suite, recorder=recorder,
                            config=config.record())
    if sampler is not None:
        summary["resources"] = sampler.summary()
    json_mode = args.format == "json"
    if json_mode:
        # The artifact document itself goes to stdout (pipeable);
        # progress chatter moves to stderr.
        print(json.dumps(summary, indent=2))
    else:
        print(format_profile(recorder, title=args.name))
    path = write_bench_artifact(summary, args.obs_out)
    print(("" if json_mode else "\n") + f"wrote {path}",
          file=sys.stderr if json_mode else sys.stdout)
    if args.spans:
        spans_path = write_ndjson(recorder.spans, args.spans)
        print(f"wrote {spans_path}",
              file=sys.stderr if json_mode else sys.stdout)
    return 0


def _normalize_class_key(raw: str) -> str:
    """Accept ``dc_sd``/``DC-SD``-style spellings for class keys."""
    return raw.lower().replace("_", "").replace("-", "")


def _make_engine(engine_key: str):
    """One engine instance by key (the registry factory, which also
    covers the edge store)."""
    return create(engine_key)


def _cmd_explain(args: argparse.Namespace) -> int:
    import json
    from .errors import UnsupportedConfiguration, UnsupportedQuery
    from .obs import PlanProfiler, Recorder, observing, render_plan
    from .xml.serializer import serialize

    class_key = _normalize_class_key(args.class_key)
    if class_key not in CLASSES_BY_KEY:
        print(f"error: unknown database class {args.class_key!r} "
              f"(choose from {', '.join(sorted(CLASSES_BY_KEY))})",
              file=sys.stderr)
        return 1
    qid = args.qid.upper()
    query = QUERIES_BY_ID.get(qid)
    if query is None or not query.applies_to(class_key):
        print(f"error: {qid} is not defined for {class_key}",
              file=sys.stderr)
        return 1

    db_class = CLASSES_BY_KEY[class_key]
    documents = db_class.generate(args.units, seed=args.seed)
    texts = [(d.name, serialize(d)) for d in documents]
    engine_keys = args.engine or ["native"]

    sections: list[dict] = []
    for engine_key in engine_keys:
        with _make_engine(engine_key) as engine:
            section: dict = {"engine": engine_key,
                             "system": engine.row_label, "qid": qid,
                             "class": class_key}
            try:
                engine.check_supported(db_class, "small")
                engine.timed_load(db_class, texts)
                engine.create_indexes(list(indexes_for(class_key)))
                params = bind_params(qid, class_key, args.units)
                recorder = Recorder(name="explain",
                                    plan=PlanProfiler())
                with observing(recorder):
                    outcome = engine.timed_execute(qid, params)
            except (UnsupportedConfiguration, UnsupportedQuery) as exc:
                section["unsupported"] = str(exc)
                sections.append(section)
                continue
            section["seconds"] = outcome.seconds
            section["rows"] = len(outcome.values)
            section["params"] = dict(params)
            section["plans"] = recorder.plan.tree_records()
            section["trees"] = recorder.plan.trees()
            sections.append(section)

    if args.format == "json":
        payload = [{key: value for key, value in section.items()
                    if key != "trees"} for section in sections]
        print(json.dumps(payload, indent=2))
    else:
        for section in sections:
            header = (f"== {section['qid']} on {section['class']} via "
                      f"{section['system']} ({section['engine']}) ==")
            print(header)
            if "unsupported" in section:
                print(f"  unsupported: {section['unsupported']}\n")
                continue
            print(f"  {section['rows']} row(s) in "
                  f"{section['seconds'] * 1000:.2f} ms "
                  f"(params {section['params']})")
            for tree in section["trees"]:
                print(render_plan(tree))
            print()
    return 0 if any("unsupported" not in section
                    for section in sections) else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json
    from .obs import diff_paths
    from .obs.diff import DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD
    if args.obs_command != "diff":      # pragma: no cover - argparse gates
        return 1
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    min_seconds = (args.min_ms / 1000.0 if args.min_ms is not None
                   else DEFAULT_MIN_SECONDS)
    try:
        report = diff_paths(args.artifact_a, args.artifact_b,
                            threshold=threshold,
                            min_seconds=min_seconds,
                            normalize_shards=args.normalize_shards)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_record(), indent=2))
    else:
        print(report.format_text(verbose=args.verbose))
    return report.exit_code()


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from .faults import run_chaos
    from .obs import Recorder, bench_summary, write_bench_artifact
    recorder = Recorder(name=args.name)
    result = run_chaos(args.scenario, class_key=args.class_key,
                       engine_key=args.engine, units=args.units,
                       shards=args.shards, queries=args.queries,
                       seed=args.seed, retries=args.retries,
                       degraded=args.degraded,
                       rpc_timeout=args.rpc_timeout,
                       deadline_seconds=args.deadline,
                       replicas=args.replicas,
                       consistency=args.consistency,
                       write_every=args.write_every,
                       data_dir=args.data_dir,
                       restarts=args.restarts,
                       recorder=recorder)
    if args.format == "json":
        print(json.dumps(result.record(), indent=2))
    else:
        print(result.summary())
    if args.obs_out is not None:
        summary = bench_summary(
            args.name, recorder=recorder,
            config={"scenario": args.scenario, "seed": args.seed,
                    "engine": args.engine, "class": args.class_key,
                    "units": args.units, "shards": args.shards,
                    "queries": args.queries,
                    "retries": args.retries,
                    "degraded": args.degraded,
                    "deadline": args.deadline,
                    "rpc_timeout": args.rpc_timeout,
                    "replicas": result.replicas,
                    "consistency": result.consistency},
            extra={"chaos": result.record()})
        path = write_bench_artifact(summary, args.obs_out)
        print(f"wrote {path}")
    if result.unhandled:
        print(f"error: {result.unhandled} unhandled exception(s) "
              "escaped the resilience layer", file=sys.stderr)
        return 1
    if (args.min_availability is not None
            and result.availability_pct < args.min_availability):
        print(f"error: availability {result.availability_pct:.2f}% "
              f"below the required {args.min_availability:.2f}%",
              file=sys.stderr)
        return 1
    if (args.max_lost_writes is not None
            and result.lost_writes > args.max_lost_writes):
        print(f"error: {result.lost_writes} acknowledged write(s) "
              f"lost (at most {args.max_lost_writes} allowed)",
              file=sys.stderr)
        return 1
    return 0


def _parse_pairs(items: list[str] | None, flag: str) -> dict:
    """Parse repeated ``NAME=NUMBER`` flags into a dict."""
    pairs: dict[str, float] = {}
    for item in items or []:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ReproError(
                f"{flag} expects NAME=NUMBER, got {item!r}")
        try:
            pairs[name] = float(value)
        except ValueError:
            raise ReproError(
                f"{flag} expects NAME=NUMBER, got {item!r}") from None
    return pairs


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from .server import QueryServer, ServerConfig
    config = ServerConfig(
        host=args.host, port=args.port, engine=args.engine,
        class_key=args.class_key, units=args.units,
        shards=args.shards, replicas=args.replicas,
        max_queue=args.queue,
        executors=args.executors,
        tenant_weights=_parse_pairs(args.tenant_weight,
                                    "--tenant-weight"),
        default_deadline=args.deadline,
        rpc_timeout=args.rpc_timeout, degraded=args.degraded,
        preload=not args.no_preload,
        throttle_seconds=args.throttle,
        trace=args.trace_spans is not None,
        trace_spans=args.trace_spans,
        sample_resources=not args.no_resource_sampling,
        snapshot_dir=args.snapshot_dir,
        data_dir=args.data_dir, fsync=args.fsync,
        checkpoint_interval=args.checkpoint_interval)
    return asyncio.run(QueryServer(config).run())


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .core.corpus_io import Snapshot, snapshot_filename, \
        write_snapshot
    if args.snapshot_command == "build":
        import pathlib
        from .databases import SCALES_BY_NAME
        class_keys = (sorted(CLASSES_BY_KEY)
                      if args.class_key == "all" else [args.class_key])
        out = pathlib.Path(args.out)
        for class_key in class_keys:
            db_class = CLASSES_BY_KEY[class_key]
            units = args.units
            if units is None:
                budget = SCALES_BY_NAME[args.scale].budget(args.divisor)
                units = db_class.units_for_budget(budget,
                                                  seed=args.seed)
            documents = db_class.generate(units, seed=args.seed)
            path = out / snapshot_filename(class_key, units)
            meta = write_snapshot(path, documents,
                                  meta={"class": class_key,
                                        "units": units,
                                        "seed": args.seed})
            print(f"wrote {path}: {meta['documents']} document(s), "
                  f"{meta['payload_bytes'] / 1024:.0f} KB encoded")
        return 0
    # inspect
    with Snapshot.open(args.path) as snapshot:
        meta = snapshot.meta
        entries = snapshot.entries
        nodes = sum(entry["nodes"] for entry in entries)
        interns = sum(entry["interns"] for entry in entries)
        print(f"{args.path}: {meta.get('format')} "
              f"class={meta.get('class')} units={meta.get('units')} "
              f"seed={meta.get('seed')}")
        print(f"  {len(entries)} document(s), {nodes} node(s), "
              f"{interns} interned name(s), "
              f"{meta.get('payload_bytes', 0)} encoded byte(s)")
        shown = entries if args.limit == 0 else entries[:args.limit]
        for entry in shown:
            print(f"  {entry['name']}: {entry['nodes']} node(s), "
                  f"{entry['interns']} intern(s), "
                  f"{entry['length']} byte(s) @ {entry['offset']}")
        if len(entries) > len(shown):
            print(f"  ... {len(entries) - len(shown)} more "
                  f"(--limit 0 for all)")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json
    from .loadgen import (
        LoadConfig,
        run_rate_sweep,
        run_trial,
        sweep_curve,
    )
    from .obs import Recorder, bench_summary, observing, \
        write_bench_artifact
    tenants = tuple(_parse_pairs(args.tenant, "--tenant").items()) \
        or (("default", 1.0),)
    query_ids = (tuple(qid.upper() for qid in args.queries.split(","))
                 if args.queries else None)
    config = LoadConfig(
        host=args.host, port=args.port, engine=args.engine,
        class_key=args.class_key, units=args.units,
        shards=args.shards, replicas=args.replicas,
        consistency=args.consistency,
        mode=args.mode, rate=args.rate,
        streams=args.streams, think_seconds=args.think,
        warmup_seconds=args.warmup, measure_seconds=args.measure,
        seed=args.seed, deadline=args.deadline,
        update_every=args.update_every, tenants=tenants)
    if query_ids:
        config.query_ids = query_ids
    import contextlib
    observed = args.obs_out is not None or args.trace_spans is not None
    recorder = Recorder(name=args.name) if observed else None
    scope = (observing(recorder) if recorder is not None
             else contextlib.nullcontext())
    with scope:
        if args.rate_sweep:
            rates = [float(rate)
                     for rate in args.rate_sweep.split(",")]
            results = run_rate_sweep(config, rates)
            curve = sweep_curve(results)
            record = {"sweep": [trial.record() for trial in results],
                      "curve": curve}
            errors = sum(trial.errors for trial in results)
            if args.format == "json":
                print(json.dumps(record, indent=2))
            else:
                for trial in results:
                    print(trial.summary())
                print("\nrate sweep (throughput vs tail latency):")
                print(f"  {'rate':>8} {'ok/s':>8} {'p50 ms':>9} "
                      f"{'p95 ms':>9} {'p99 ms':>9} {'rej':>5} "
                      f"{'t/o':>5} {'ok %':>6}")
                for point in curve:
                    print(f"  {point['target_rate']:>8g} "
                          f"{point['throughput_qps']:>8.1f} "
                          f"{point['p50_ms']:>9.2f} "
                          f"{point['p95_ms']:>9.2f} "
                          f"{point['p99_ms']:>9.2f} "
                          f"{point['rejected']:>5} "
                          f"{point['timeouts']:>5} "
                          f"{point['success_pct']:>6.1f}")
        else:
            result = run_trial(config)
            record = result.record()
            errors = result.errors
            if args.format == "json":
                print(json.dumps(record, indent=2))
            else:
                print(result.summary())
    if args.trace_spans is not None and recorder is not None:
        from .obs import trace_records, write_ndjson
        spans_path = write_ndjson(trace_records(recorder),
                                  args.trace_spans)
        print(f"wrote {spans_path}")
    if args.obs_out is not None:
        # The server's live telemetry (CPU/RSS sampler, engine cache,
        # admission state) rides along in the artifact so one
        # BENCH_serving.json holds both sides of the run.
        server_stats = None
        try:
            from .loadgen import ServingClient
            with ServingClient(args.host, args.port) as stats_client:
                server_stats = stats_client.stats()
        except (OSError, ReproError):
            pass
        summary = bench_summary(
            args.name, recorder=recorder,
            config={"host": args.host, "port": args.port,
                    "engine": args.engine, "class": args.class_key,
                    "units": args.units, "shards": args.shards,
                    "replicas": args.replicas,
                    "consistency": args.consistency,
                    "mode": ("open" if args.rate_sweep
                             else args.mode),
                    "rate": args.rate, "rate_sweep": args.rate_sweep,
                    "streams": args.streams, "think": args.think,
                    "warmup": args.warmup, "measure": args.measure,
                    "seed": args.seed, "deadline": args.deadline,
                    "tenants": dict(tenants)},
            extra={"serving": record,
                   **({"server_stats": server_stats}
                      if server_stats is not None else {})})
        path = write_bench_artifact(summary, args.obs_out)
        print(f"wrote {path}")
    if errors:
        print(f"error: {errors} request(s) failed with unexpected "
              "errors", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib
    from .obs.trace import (
        assemble,
        attribution,
        attribution_table,
        completeness,
        format_attribution,
        render_tree,
    )
    records: list[dict] = []
    for log in args.logs:
        path = pathlib.Path(log)
        if not path.exists():
            print(f"error: no span log at {log}", file=sys.stderr)
            return 2
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                print(f"error: {log}: not NDJSON", file=sys.stderr)
                return 2
            if isinstance(record, dict):
                records.append(record)

    trees = assemble(records)
    if args.trace_id is not None:
        trees = [tree for tree in trees
                 if tree.trace_id == args.trace_id]
        if not trees:
            print(f"error: no spans for trace {args.trace_id}",
                  file=sys.stderr)
            return 2
    coverage = completeness(trees)
    table = attribution_table(trees)
    # Slowest requests first: where an investigation starts.
    ranked = sorted(trees, key=lambda tree: attribution(tree)["total"],
                    reverse=True)
    shown = ranked if args.trace_id is not None else \
        ranked[:max(0, args.limit)]
    report = {
        "logs": list(args.logs),
        "completeness": coverage,
        "attribution": table,
        "slowest": [
            {"trace_id": tree.trace_id,
             "complete": tree.complete,
             **attribution(tree),
             "critical_path": [
                 {"name": span.get("name"),
                  "process": span.get("process"),
                  "ms": span.get("seconds", 0.0) * 1000.0}
                 for span in tree.critical_path()]}
            for tree in shown],
    }
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(f"{coverage['traces']} trace(s) from "
              f"{len(args.logs)} log(s): {coverage['complete']} "
              f"complete ({coverage['complete_pct']:.1f}%), "
              f"{coverage['incomplete']} incomplete")
        print()
        print(format_attribution(table))
        for tree in shown:
            print()
            print(render_tree(tree))
    if args.out is not None:
        from .obs.export import _write_text_atomic
        _write_text_atomic(pathlib.Path(args.out),
                           json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}",
              file=sys.stderr if args.format == "json" else sys.stdout)
    if (args.min_completeness is not None
            and coverage["complete_pct"] < args.min_completeness):
        print(f"error: trace completeness "
              f"{coverage['complete_pct']:.2f}% below the required "
              f"{args.min_completeness:.2f}%", file=sys.stderr)
        return 1
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from .xml.schema import render_diagram
    from .xml.schema_export import to_dtd, to_xsd
    db_class = CLASSES_BY_KEY[args.class_key]
    schema = db_class.schema()
    if args.format == "dtd":
        print(to_dtd(schema), end="")
    elif args.format == "xsd":
        print(to_xsd(schema), end="")
    else:
        print(render_diagram(schema, db_class.label))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .core.verification import verify_scenario
    bench = XBench(BenchmarkConfig(scale_divisor=args.divisor,
                                   snapshot_dir=args.snapshot_dir))
    class_keys = ([args.class_key] if args.class_key
                  else sorted(CLASSES_BY_KEY))
    mismatches = 0
    sharded_mismatches = 0
    for class_key in class_keys:
        report = verify_scenario(bench, class_key, args.scale,
                                 shards=args.shards,
                                 rpc_timeout=args.rpc_timeout,
                                 replicas=args.replicas)
        print(report.format())
        print()
        mismatches += len(report.mismatches())
        if args.shards > 1:
            # The sharded row's label is "... xN" (plus " +Nr" with
            # replicas), so match the shard marker anywhere.
            suffix = f" x{args.shards}"
            sharded_mismatches += sum(
                1 for label, __ in report.mismatches()
                if suffix in label)
    print(f"{mismatches} cell(s) differ from the native oracle "
          "(expected: the paper's documented mapping infidelities)")
    if sharded_mismatches:
        print(f"error: {sharded_mismatches} sharded cell(s) differ "
              "from the single-process oracle (merge bug)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    scales = tuple(args.scales.split(","))
    config = BenchmarkConfig(scale_divisor=args.divisor,
                             scale_names=scales,
                             class_keys=tuple(args.classes.split(",")),
                             with_indexes=not args.no_indexes,
                             repeats=args.repeats,
                             observe=args.obs_out is not None,
                             shards=args.shards,
                             rpc_timeout=args.rpc_timeout,
                             snapshot_dir=args.snapshot_dir)
    bench = XBench(config)
    suite = bench.run_suite()
    if args.format == "csv":
        from .core.report import format_csv
        print(format_csv(suite))
    elif args.format == "json":
        from .core.report import format_json
        print(format_json(suite))
    else:
        print(format_suite(suite, scale_names=scales))
    if args.obs_out is not None:
        from .obs import bench_summary, write_bench_artifact
        summary = bench_summary("suite", suite=suite,
                                recorder=bench.recorder,
                                config=config.record())
        path = write_bench_artifact(summary, args.obs_out)
        print(f"wrote {path}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    import pathlib
    from .xml.serializer import serialize
    db_class = CLASSES_BY_KEY[args.class_key]
    directory = pathlib.Path(args.out) / args.class_key
    directory.mkdir(parents=True, exist_ok=True)
    total = 0
    documents = db_class.generate(args.units, seed=args.seed)
    for document in documents:
        text = serialize(document)
        (directory / document.name).write_text(
            '<?xml version="1.0" encoding="UTF-8"?>' + text,
            encoding="utf-8")
        total += len(text)
    print(f"wrote {len(documents)} document(s), {total / 1024:.0f} KB "
          f"to {directory}")
    return 0


def _load_engine(engine_key: str, class_key: str, units: int,
                 seed: int, shards: int = 0,
                 rpc_timeout: float | None = None,
                 replicas: int = 0, consistency: str = "strong"):
    from .xml.serializer import serialize
    db_class = CLASSES_BY_KEY[class_key]
    if shards > 1:
        from .core.shard import ShardedEngine
        engine = ShardedEngine(engine_key, shards=shards,
                               timeout=rpc_timeout,
                               replicas=replicas,
                               default_consistency=consistency)
    else:
        engine = create(engine_key)
    try:
        engine.check_supported(db_class, "small")
        documents = db_class.generate(units, seed=seed)
        engine.timed_load(db_class,
                          [(d.name, serialize(d)) for d in documents])
        engine.create_indexes(list(indexes_for(class_key)))
    except BaseException:
        # A failed load must still reap sharded worker processes.
        engine.close()
        raise
    return engine


def _cmd_query(args: argparse.Namespace) -> int:
    qid = args.qid.upper()
    query = QUERIES_BY_ID.get(qid)
    if query is None or not query.applies_to(args.class_key):
        print(f"error: {qid} is not defined for {args.class_key}",
              file=sys.stderr)
        return 1
    with _load_engine(args.engine, args.class_key, args.units,
                      args.seed) as engine:
        params = bind_params(qid, args.class_key, args.units)
        outcome = engine.timed_execute(qid, params)
        print(f"{qid} on {args.class_key} via {engine.row_label}: "
              f"{len(outcome.values)} item(s) in "
              f"{outcome.seconds * 1000:.2f} ms")
        print(f"  query: {query.text_for(args.class_key)}")
        print(f"  params: {params}")
        for value in outcome.values[:args.limit]:
            preview = (value if len(value) <= 100
                       else value[:97] + "...")
            print(f"  {preview}")
        if len(outcome.values) > args.limit:
            print(f"  ... {len(outcome.values) - args.limit} more")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .stats import analyze_corpus, best_fit, format_table2
    db_class = CLASSES_BY_KEY[args.class_key]
    documents = db_class.generate(args.units, seed=args.seed)
    stats = analyze_corpus(documents, source=db_class.label)
    print(format_table2([stats]))
    print(f"\nelement types: {stats.distinct_element_types}, "
          f"elements: {stats.total_elements}, "
          f"max depth: {stats.max_depth}, "
          f"text ratio: {stats.text_ratio():.2f}, "
          f"mixed types: {sorted(stats.mixed_tags) or 'none'}")
    print("\nchild-occurrence fits:")
    for pair in stats.parent_child_pairs():
        samples = [float(v) for v in stats.occurrence_samples(*pair)]
        if len(samples) >= 10:
            print(f"  {pair[0]}/{pair[1]}: {best_fit(samples)}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if not args.full:
        print(f"{'id':<5}{'functionality':<45}{'classes'}")
        for query in ALL_QUERIES:
            classes = ",".join(sorted(query.xquery))
            print(f"{query.qid:<5}{query.functionality:<45}{classes}")
        return 0
    for query in ALL_QUERIES:
        print(f"{query.qid} - {query.functionality}")
        print(f"  {query.description}")
        print(f"  canonical class: {query.canonical_class}")
        for class_key in sorted(query.xquery):
            print(f"  [{class_key}] {query.text_for(class_key)}")
        print()
    return 0


def _cmd_updates(args: argparse.Namespace) -> int:
    from .workload.updates import make_update_stream, run_update_stream
    with _load_engine(args.engine, args.class_key, args.units, 42,
                      shards=args.shards) as engine:
        stream = make_update_stream(args.class_key, args.units,
                                    count=args.count)
        stats = run_update_stream(engine, args.class_key, stream)
        print(f"update stream on {args.class_key} via "
              f"{engine.row_label}:")
        for kind in sorted(stats.counts):
            print(f"  {kind:<8}{stats.counts[kind]:>4} ops, "
                  f"mean {stats.mean_ms(kind):8.3f} ms")
    return 0


if __name__ == "__main__":          # pragma: no cover
    sys.exit(main())
